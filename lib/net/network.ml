module Clock = Idbox_kernel.Clock
module Metrics = Idbox_kernel.Metrics
module Trace = Idbox_kernel.Trace
module Errno = Idbox_vfs.Errno

type endpoint_stats = {
  mutable calls : int;
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable busy_ns : int64;
      (* Service time this endpoint spent handling calls: transfer time
         for both legs plus the simulated-clock time its handler burned.
         The capacity model for cluster benchmarks: with perfect
         sharding, aggregate throughput is bounded by the busiest
         endpoint's busy time, not the sum. *)
}

type endpoint = {
  handler : string -> string;
  ep_stats : endpoint_stats;
  mutable up : bool;
}

type t = {
  nw_clock : Clock.t;
  endpoints : (string, endpoint) Hashtbl.t;
  groups : (string, string list) Hashtbl.t;
  latency_ns : int64;
  ns_per_byte : float;
  timeout_ns : int64;
  nw_metrics : Metrics.t;
  nw_trace : Trace.ring option;
  mutable plan : Fault.plan option;
  mutable rng : Fault.rng;
  mutable messages : int;
  mutable bytes : int;
  (* Counter handles interned once per name: the fault/timeout hot
     paths update them without re-hashing the name in the registry on
     every call (per-endpoint names are interned at first use). *)
  nw_counters : (string, Metrics.counter) Hashtbl.t;
  c_timeout : Metrics.counter;
  c_hedge : Metrics.counter;
}

let create ~clock ?(latency_us = 100.) ?(bandwidth_mbps = 100.)
    ?(timeout_us = 1_000_000.) ?metrics ?trace () =
  let m = match metrics with Some m -> m | None -> Metrics.create () in
  {
    nw_clock = clock;
    endpoints = Hashtbl.create 8;
    groups = Hashtbl.create 4;
    latency_ns = Clock.of_micros latency_us;
    (* bits/s -> ns/byte *)
    ns_per_byte = 8e3 /. bandwidth_mbps;
    timeout_ns = Clock.of_micros timeout_us;
    nw_metrics = m;
    nw_trace = trace;
    plan = None;
    rng = Fault.rng 0L;
    messages = 0;
    bytes = 0;
    nw_counters = Hashtbl.create 32;
    c_timeout = Metrics.counter m "net.timeout";
    c_hedge = Metrics.counter m "net.hedge";
  }

let clock t = t.nw_clock
let metrics t = t.nw_metrics

let interned t name =
  match Hashtbl.find_opt t.nw_counters name with
  | Some c -> c
  | None ->
    let c = Metrics.counter t.nw_metrics name in
    Hashtbl.replace t.nw_counters name c;
    c

let listen t ~addr handler =
  Hashtbl.replace t.endpoints addr
    { handler;
      ep_stats = { calls = 0; bytes_in = 0; bytes_out = 0; busy_ns = 0L };
      up = true }

let unlisten t ~addr = Hashtbl.remove t.endpoints addr

let addresses t =
  Hashtbl.fold (fun addr _ acc -> addr :: acc) t.endpoints []
  |> List.sort String.compare

let set_fault_plan t plan =
  t.plan <- Some plan;
  t.rng <- Fault.rng plan.Fault.seed

let clear_fault_plan t = t.plan <- None

let crash t ~addr =
  match Hashtbl.find_opt t.endpoints addr with
  | Some ep -> ep.up <- false
  | None -> ()

let restart t ~addr =
  match Hashtbl.find_opt t.endpoints addr with
  | Some ep -> ep.up <- true
  | None -> ()

let is_up t ~addr =
  match Hashtbl.find_opt t.endpoints addr with
  | Some ep -> ep.up
  | None -> false

let charge_transfer t nbytes =
  t.messages <- t.messages + 1;
  t.bytes <- t.bytes + nbytes;
  Clock.advance t.nw_clock
    (Int64.add t.latency_ns
       (Int64.of_float (float_of_int nbytes *. t.ns_per_byte)))

(* Count a fault both network-wide and per destination, and leave a
   span in the trace ring so fault timelines are reconstructable. *)
let note_fault t ~addr ~kind ~verdict ~cost_ns =
  Metrics.incr (interned t kind);
  Metrics.incr (interned t (kind ^ "." ^ addr));
  match t.nw_trace with
  | None -> ()
  | Some ring ->
    Trace.span ring ~time:(Clock.now t.nw_clock) ~pid:0 ~identity:addr
      ~syscall:kind ~verdict ~cost_ns

let call t ?(src = "client") ?timeout_ns ~addr payload =
  let timeout = match timeout_ns with Some v -> v | None -> t.timeout_ns in
  let prof =
    match t.plan with
    | None -> Fault.calm
    | Some p -> Fault.profile_for p addr
  in
  let cut =
    match t.plan with
    | None -> false
    | Some p -> Fault.partitioned p ~now:(Clock.now t.nw_clock) ~src ~dst:addr
  in
  if cut then begin
    (* The request sails into the void; the caller waits out the
       timeout. *)
    Clock.advance t.nw_clock timeout;
    note_fault t ~addr ~kind:"net.partition" ~verdict:"ETIMEDOUT" ~cost_ns:timeout;
    Metrics.incr t.c_timeout;
    Metrics.incr (interned t ("net.timeout." ^ addr));
    Error Errno.ETIMEDOUT
  end
  else
    match Hashtbl.find_opt t.endpoints addr with
    | None ->
      note_fault t ~addr ~kind:"net.refused" ~verdict:"ECONNREFUSED" ~cost_ns:0L;
      Error Errno.ECONNREFUSED
    | Some ep when not ep.up ->
      note_fault t ~addr ~kind:"net.refused" ~verdict:"ECONNREFUSED" ~cost_ns:0L;
      Error Errno.ECONNREFUSED
    | Some ep ->
      if Fault.chance t.rng prof.Fault.jitter then begin
        let extra =
          Int64.of_int (Fault.int_below t.rng (Int64.to_int prof.Fault.max_jitter_ns))
        in
        Clock.advance t.nw_clock extra;
        note_fault t ~addr ~kind:"net.jitter" ~verdict:"ok" ~cost_ns:extra
      end;
      if Fault.chance t.rng prof.Fault.drop then begin
        (* Request lost in flight: the bytes left the sender, the
           handler never sees them. *)
        t.messages <- t.messages + 1;
        t.bytes <- t.bytes + String.length payload;
        Clock.advance t.nw_clock timeout;
        note_fault t ~addr ~kind:"net.drop" ~verdict:"ETIMEDOUT" ~cost_ns:timeout;
        Metrics.incr t.c_timeout;
        Metrics.incr (interned t ("net.timeout." ^ addr));
        Error Errno.ETIMEDOUT
      end
      else begin
        let service_start = Clock.now t.nw_clock in
        let note_busy () =
          ep.ep_stats.busy_ns <-
            Int64.add ep.ep_stats.busy_ns
              (Int64.sub (Clock.now t.nw_clock) service_start)
        in
        charge_transfer t (String.length payload);
        ep.ep_stats.calls <- ep.ep_stats.calls + 1;
        ep.ep_stats.bytes_in <- ep.ep_stats.bytes_in + String.length payload;
        match (try Ok (ep.handler payload) with _ -> Error ()) with
        | Error () ->
          (* The handler blew up: contain the exception at the wire,
             charge the aborted response leg, surface a reset. *)
          charge_transfer t 0;
          note_busy ();
          note_fault t ~addr ~kind:"net.reset" ~verdict:"ECONNRESET"
            ~cost_ns:t.latency_ns;
          Error Errno.ECONNRESET
        | Ok response ->
          if Fault.chance t.rng prof.Fault.reset then begin
            charge_transfer t 0;
            note_busy ();
            note_fault t ~addr ~kind:"net.reset" ~verdict:"ECONNRESET"
              ~cost_ns:t.latency_ns;
            Error Errno.ECONNRESET
          end
          else if Fault.chance t.rng prof.Fault.drop then begin
            (* Response lost after the handler ran — the dangerous case
               for non-idempotent operations. *)
            t.messages <- t.messages + 1;
            t.bytes <- t.bytes + String.length response;
            note_busy ();
            Clock.advance t.nw_clock timeout;
            note_fault t ~addr ~kind:"net.drop" ~verdict:"ETIMEDOUT"
              ~cost_ns:timeout;
            Metrics.incr t.c_timeout;
            Metrics.incr (interned t ("net.timeout." ^ addr));
            Error Errno.ETIMEDOUT
          end
          else begin
            let response =
              if Fault.chance t.rng prof.Fault.truncate then begin
                note_fault t ~addr ~kind:"net.truncate" ~verdict:"ok" ~cost_ns:0L;
                Fault.truncate_string t.rng response
              end
              else if Fault.chance t.rng prof.Fault.corrupt then begin
                note_fault t ~addr ~kind:"net.corrupt" ~verdict:"ok" ~cost_ns:0L;
                Fault.flip_bytes t.rng response
              end
              else response
            in
            charge_transfer t (String.length response);
            ep.ep_stats.bytes_out <- ep.ep_stats.bytes_out + String.length response;
            note_busy ();
            Ok response
          end
      end

let stats t ~addr =
  Option.map (fun ep -> ep.ep_stats) (Hashtbl.find_opt t.endpoints addr)

let busy_ns t ~addr =
  match Hashtbl.find_opt t.endpoints addr with
  | Some ep -> ep.ep_stats.busy_ns
  | None -> 0L

let total_messages t = t.messages

let total_bytes t = t.bytes

(* {1 Endpoint groups} *)

let define_group t ~name ~addrs = Hashtbl.replace t.groups name addrs

let group_addrs t ~name =
  match Hashtbl.find_opt t.groups name with Some l -> l | None -> []

let drop_group t ~name = Hashtbl.remove t.groups name

(* Transport failures worth trying the next group member for.  A
   handler-level error (anything the endpoint answered) stops the
   sweep: the group members are replicas of one service, so an
   application verdict from one speaks for all. *)
let hedgeable = function
  | Errno.ETIMEDOUT | Errno.ECONNRESET | Errno.ECONNREFUSED
  | Errno.EHOSTUNREACH -> true
  | _ -> false

let call_any t ?(src = "client") ?timeout_ns ~group payload =
  let addrs =
    match Hashtbl.find_opt t.groups group with
    | Some l -> l
    | None -> [ group ]  (* a bare address is a group of one *)
  in
  let rec sweep last = function
    | [] ->
      (match last with
       | Some e -> Error e
       | None -> Error Errno.EHOSTUNREACH)
    | addr :: rest ->
      (match call t ~src ?timeout_ns ~addr payload with
       | Ok response -> Ok (addr, response)
       | Error e when hedgeable e && rest <> [] ->
         (* Hedged failover: this member is unreachable, the next may
            not be. *)
         Metrics.incr t.c_hedge;
         sweep (Some e) rest
       | Error e -> Error e)
  in
  sweep None addrs
