module Clock = Idbox_kernel.Clock
module Metrics = Idbox_kernel.Metrics
module Trace = Idbox_kernel.Trace
module Errno = Idbox_vfs.Errno

type endpoint_stats = {
  mutable calls : int;
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable busy_ns : int64;
      (* Service time this endpoint spent handling calls: transfer time
         for both legs plus the simulated-clock time its handler burned.
         The capacity model for cluster benchmarks: with perfect
         sharding, aggregate throughput is bounded by the busiest
         endpoint's busy time, not the sum. *)
}

(* A completion token: the client half of an in-flight asynchronous
   exchange.  Completed exactly once — by the response arriving or by
   the timeout event, whichever fires first; whatever shows up second
   is discarded and counted as a late reply. *)
type token = {
  tk_addr : string;
  mutable tk_result : (string, Errno.t) result option;
  mutable tk_done_at : int64;  (* meaningful once tk_result is set *)
}

(* The server half of an asynchronous exchange: handed to an async
   endpoint's handler on delivery, consumed by [respond] — possibly
   much later, after the server parked the request. *)
type conn = {
  cn_token : token;
  cn_addr : string;
  cn_deliver_at : int64;
  cn_req_ns : int64;  (* request-leg transfer time, for busy accounting *)
}

type handler_kind =
  | Sync of (string -> string)
  | Async of (conn -> string -> unit)

type endpoint = {
  hkind : handler_kind;
  ep_stats : endpoint_stats;
  mutable up : bool;
}

(* The event queue: a binary min-heap ordered by (time, seq).  Events
   carry a liveness guard so a cancelled event — a timeout whose token
   already completed — is skipped {e without} advancing the clock;
   draining the queue after a burst of fast exchanges must not teleport
   the world to the last armed timeout. *)
type event = {
  ev_time : int64;
  ev_seq : int;
  ev_live : unit -> bool;
  ev_run : unit -> unit;  (* runs with the clock advanced to ev_time *)
}

module Heap = struct
  type h = { mutable arr : event array; mutable len : int }

  let create () = { arr = [||]; len = 0 }

  let before a b =
    let c = Int64.compare a.ev_time b.ev_time in
    if c <> 0 then c < 0 else a.ev_seq < b.ev_seq

  let swap h i j =
    let tmp = h.arr.(i) in
    h.arr.(i) <- h.arr.(j);
    h.arr.(j) <- tmp

  let push h e =
    if h.len = Array.length h.arr then begin
      let arr = Array.make (max 16 (2 * Array.length h.arr)) e in
      Array.blit h.arr 0 arr 0 h.len;
      h.arr <- arr
    end;
    h.arr.(h.len) <- e;
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    let parent i = (i - 1) / 2 in
    while !i > 0 && before h.arr.(!i) h.arr.(parent !i) do
      swap h !i (parent !i);
      i := parent !i
    done

  let pop h =
    if h.len = 0 then None
    else begin
      let top = h.arr.(0) in
      h.len <- h.len - 1;
      if h.len > 0 then begin
        h.arr.(0) <- h.arr.(h.len);
        let i = ref 0 in
        let continue = ref true in
        while !continue do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let s = ref !i in
          if l < h.len && before h.arr.(l) h.arr.(!s) then s := l;
          if r < h.len && before h.arr.(r) h.arr.(!s) then s := r;
          if !s = !i then continue := false
          else begin
            swap h !i !s;
            i := !s
          end
        done
      end;
      Some top
    end
end

type t = {
  nw_clock : Clock.t;
  endpoints : (string, endpoint) Hashtbl.t;
  groups : (string, string list) Hashtbl.t;
  latency_ns : int64;
  ns_per_byte : float;
  timeout_ns : int64;
  nw_metrics : Metrics.t;
  nw_trace : Trace.ring option;
  mutable plan : Fault.plan option;
  mutable rng : Fault.rng;
  mutable messages : int;
  mutable bytes : int;
  (* Counter handles interned once per name: the fault/timeout hot
     paths update them without re-hashing the name in the registry on
     every call (per-endpoint names are interned at first use). *)
  nw_counters : (string, Metrics.counter) Hashtbl.t;
  c_timeout : Metrics.counter;
  c_hedge : Metrics.counter;
  c_late : Metrics.counter;
  eventq : Heap.h;
  mutable ev_seq : int;
}

let create ~clock ?(latency_us = 100.) ?(bandwidth_mbps = 100.)
    ?(timeout_us = 1_000_000.) ?metrics ?trace () =
  let m = match metrics with Some m -> m | None -> Metrics.create () in
  {
    nw_clock = clock;
    endpoints = Hashtbl.create 8;
    groups = Hashtbl.create 4;
    latency_ns = Clock.of_micros latency_us;
    (* bits/s -> ns/byte *)
    ns_per_byte = 8e3 /. bandwidth_mbps;
    timeout_ns = Clock.of_micros timeout_us;
    nw_metrics = m;
    nw_trace = trace;
    plan = None;
    rng = Fault.rng 0L;
    messages = 0;
    bytes = 0;
    nw_counters = Hashtbl.create 32;
    c_timeout = Metrics.counter m "net.timeout";
    c_hedge = Metrics.counter m "net.hedge";
    c_late = Metrics.counter m "net.late_reply";
    eventq = Heap.create ();
    ev_seq = 0;
  }

let clock t = t.nw_clock
let metrics t = t.nw_metrics

let interned t name =
  match Hashtbl.find_opt t.nw_counters name with
  | Some c -> c
  | None ->
    let c = Metrics.counter t.nw_metrics name in
    Hashtbl.replace t.nw_counters name c;
    c

let fresh_stats () = { calls = 0; bytes_in = 0; bytes_out = 0; busy_ns = 0L }

let listen t ~addr handler =
  Hashtbl.replace t.endpoints addr
    { hkind = Sync handler; ep_stats = fresh_stats (); up = true }

let listen_async t ~addr handler =
  Hashtbl.replace t.endpoints addr
    { hkind = Async handler; ep_stats = fresh_stats (); up = true }

let unlisten t ~addr = Hashtbl.remove t.endpoints addr

let addresses t =
  Hashtbl.fold (fun addr _ acc -> addr :: acc) t.endpoints []
  |> List.sort String.compare

let set_fault_plan t plan =
  t.plan <- Some plan;
  t.rng <- Fault.rng plan.Fault.seed

let clear_fault_plan t = t.plan <- None

let crash t ~addr =
  match Hashtbl.find_opt t.endpoints addr with
  | Some ep -> ep.up <- false
  | None -> ()

let restart t ~addr =
  match Hashtbl.find_opt t.endpoints addr with
  | Some ep -> ep.up <- true
  | None -> ()

let is_up t ~addr =
  match Hashtbl.find_opt t.endpoints addr with
  | Some ep -> ep.up
  | None -> false

let transfer_ns t nbytes =
  Int64.add t.latency_ns
    (Int64.of_float (float_of_int nbytes *. t.ns_per_byte))

let charge_transfer t nbytes =
  t.messages <- t.messages + 1;
  t.bytes <- t.bytes + nbytes;
  Clock.advance t.nw_clock (transfer_ns t nbytes)

(* Count a fault both network-wide and per destination, and leave a
   span in the trace ring so fault timelines are reconstructable. *)
let note_fault t ~addr ~kind ~verdict ~cost_ns =
  Metrics.incr (interned t kind);
  Metrics.incr (interned t (kind ^ "." ^ addr));
  match t.nw_trace with
  | None -> ()
  | Some ring ->
    Trace.span ring ~time:(Clock.now t.nw_clock) ~pid:0 ~identity:addr
      ~syscall:kind ~verdict ~cost_ns

(* {1 Asynchronous exchanges}

   [submit] consumes the request-leg fault stream immediately (in
   submission order, so seeded runs stay deterministic) but advances
   no clock: faults translate into what gets scheduled, not into
   blocking.  Every submitted exchange arms exactly one timeout event;
   the token is completed by whichever of {response, timeout} fires
   first, and the loser is discarded — counted as [net.late_reply]
   when a response loses.  Event execution moves the clock forward to
   the event's time ([Clock.advance_to]); dead events are skipped
   without touching the clock. *)

let schedule t ~at ~live run =
  let e = { ev_time = at; ev_seq = t.ev_seq; ev_live = live; ev_run = run } in
  t.ev_seq <- t.ev_seq + 1;
  Heap.push t.eventq e

let at t time run = schedule t ~at:time ~live:(fun () -> true) run

let note_late t addr =
  Metrics.incr t.c_late;
  Metrics.incr (interned t ("net.late_reply." ^ addr))

(* Deliver [result] to [tok] at absolute time [at].  If the timeout
   beat this event to the token, the arrival is a late reply. *)
let schedule_completion t tok ~at result =
  schedule t ~at ~live:(fun () -> true) (fun () ->
      match tok.tk_result with
      | Some _ -> note_late t tok.tk_addr
      | None ->
        tok.tk_result <- Some result;
        tok.tk_done_at <- Clock.now t.nw_clock)

let ep_busy t addr ns =
  match Hashtbl.find_opt t.endpoints addr with
  | None -> ()
  | Some ep -> ep.ep_stats.busy_ns <- Int64.add ep.ep_stats.busy_ns ns

let respond t conn response =
  let tok = conn.cn_token in
  let addr = conn.cn_addr in
  let handler_ns = Int64.sub (Clock.now t.nw_clock) conn.cn_deliver_at in
  match tok.tk_result with
  | Some _ ->
    (* The caller gave up (timeout, or a hedged race it lost) before
       this response left the server: discard it without burning any
       fault RNG — lateness is deterministic, the stream must be too.
       The server still did the work, so it still gets charged. *)
    ep_busy t addr (Int64.add conn.cn_req_ns handler_ns);
    note_late t addr
  | None ->
    let prof =
      match t.plan with
      | None -> Fault.calm
      | Some p -> Fault.profile_for p addr
    in
    let note_busy resp_ns =
      ep_busy t addr
        (Int64.add conn.cn_req_ns (Int64.add handler_ns resp_ns))
    in
    if Fault.chance t.rng prof.Fault.reset then begin
      note_busy t.latency_ns;
      note_fault t ~addr ~kind:"net.reset" ~verdict:"ECONNRESET"
        ~cost_ns:t.latency_ns;
      schedule_completion t tok
        ~at:(Int64.add (Clock.now t.nw_clock) t.latency_ns)
        (Error Errno.ECONNRESET)
    end
    else if Fault.chance t.rng prof.Fault.drop then begin
      (* Response lost after the handler ran: nothing to schedule —
         the timeout armed at submit completes the exchange. *)
      t.messages <- t.messages + 1;
      t.bytes <- t.bytes + String.length response;
      note_busy (transfer_ns t (String.length response));
      note_fault t ~addr ~kind:"net.drop" ~verdict:"ETIMEDOUT"
        ~cost_ns:t.timeout_ns
    end
    else begin
      let response =
        if Fault.chance t.rng prof.Fault.truncate then begin
          note_fault t ~addr ~kind:"net.truncate" ~verdict:"ok" ~cost_ns:0L;
          Fault.truncate_string t.rng response
        end
        else if Fault.chance t.rng prof.Fault.corrupt then begin
          note_fault t ~addr ~kind:"net.corrupt" ~verdict:"ok" ~cost_ns:0L;
          Fault.flip_bytes t.rng response
        end
        else response
      in
      let resp_ns = transfer_ns t (String.length response) in
      t.messages <- t.messages + 1;
      t.bytes <- t.bytes + String.length response;
      (match Hashtbl.find_opt t.endpoints addr with
       | Some ep ->
         ep.ep_stats.bytes_out <- ep.ep_stats.bytes_out + String.length response
       | None -> ());
      note_busy resp_ns;
      schedule_completion t tok
        ~at:(Int64.add (Clock.now t.nw_clock) resp_ns)
        (Ok response)
    end

(* The handler blew up (or the endpoint died between submit and
   delivery): contain it at the wire, surface a reset. *)
let respond_reset t conn =
  let tok = conn.cn_token in
  let addr = conn.cn_addr in
  let handler_ns = Int64.sub (Clock.now t.nw_clock) conn.cn_deliver_at in
  ep_busy t addr
    (Int64.add conn.cn_req_ns (Int64.add handler_ns t.latency_ns));
  if tok.tk_result = None then begin
    note_fault t ~addr ~kind:"net.reset" ~verdict:"ECONNRESET"
      ~cost_ns:t.latency_ns;
    schedule_completion t tok
      ~at:(Int64.add (Clock.now t.nw_clock) t.latency_ns)
      (Error Errno.ECONNRESET)
  end
  else note_late t addr

let deliver t ~addr tok ~req_ns payload =
  t.messages <- t.messages + 1;
  t.bytes <- t.bytes + String.length payload;
  let conn =
    { cn_token = tok; cn_addr = addr;
      cn_deliver_at = Clock.now t.nw_clock; cn_req_ns = req_ns }
  in
  match Hashtbl.find_opt t.endpoints addr with
  | None | Some { up = false; _ } -> respond_reset t conn
  | Some ep ->
    ep.ep_stats.calls <- ep.ep_stats.calls + 1;
    ep.ep_stats.bytes_in <- ep.ep_stats.bytes_in + String.length payload;
    (match ep.hkind with
     | Async h -> (try h conn payload with _ -> respond_reset t conn)
     | Sync h ->
       (match (try Ok (h payload) with _ -> Error ()) with
        | Error () -> respond_reset t conn
        | Ok response -> respond t conn response))

let submit t ?(src = "client") ?timeout_ns ~addr payload =
  let timeout = match timeout_ns with Some v -> v | None -> t.timeout_ns in
  let tok = { tk_addr = addr; tk_result = None; tk_done_at = 0L } in
  let prof =
    match t.plan with
    | None -> Fault.calm
    | Some p -> Fault.profile_for p addr
  in
  let cut =
    match t.plan with
    | None -> false
    | Some p -> Fault.partitioned p ~now:(Clock.now t.nw_clock) ~src ~dst:addr
  in
  let arm_timeout () =
    schedule t ~at:(Int64.add (Clock.now t.nw_clock) timeout)
      ~live:(fun () -> tok.tk_result = None)
      (fun () ->
        tok.tk_result <- Some (Error Errno.ETIMEDOUT);
        tok.tk_done_at <- Clock.now t.nw_clock;
        Metrics.incr t.c_timeout;
        Metrics.incr (interned t ("net.timeout." ^ addr)))
  in
  let refused () =
    note_fault t ~addr ~kind:"net.refused" ~verdict:"ECONNREFUSED" ~cost_ns:0L;
    tok.tk_result <- Some (Error Errno.ECONNREFUSED);
    tok.tk_done_at <- Clock.now t.nw_clock
  in
  if cut then begin
    note_fault t ~addr ~kind:"net.partition" ~verdict:"ETIMEDOUT"
      ~cost_ns:timeout;
    arm_timeout ()
  end
  else begin
    match Hashtbl.find_opt t.endpoints addr with
    | None -> refused ()
    | Some ep when not ep.up -> refused ()
    | Some _ ->
      let jitter_ns =
        if Fault.chance t.rng prof.Fault.jitter then begin
          let extra =
            Int64.of_int
              (Fault.int_below t.rng (Int64.to_int prof.Fault.max_jitter_ns))
          in
          note_fault t ~addr ~kind:"net.jitter" ~verdict:"ok" ~cost_ns:extra;
          extra
        end
        else 0L
      in
      if Fault.chance t.rng prof.Fault.drop then begin
        (* Request lost in flight: the bytes left the sender, the
           handler never sees them; the timeout ends the wait. *)
        t.messages <- t.messages + 1;
        t.bytes <- t.bytes + String.length payload;
        note_fault t ~addr ~kind:"net.drop" ~verdict:"ETIMEDOUT"
          ~cost_ns:timeout;
        arm_timeout ()
      end
      else begin
        let req_ns =
          Int64.add jitter_ns (transfer_ns t (String.length payload))
        in
        arm_timeout ();
        schedule t ~at:(Int64.add (Clock.now t.nw_clock) req_ns)
          ~live:(fun () -> true)
          (fun () -> deliver t ~addr tok ~req_ns payload)
      end
  end;
  tok

let poll tok = tok.tk_result

let completed_at tok =
  match tok.tk_result with None -> None | Some _ -> Some tok.tk_done_at

let token_addr tok = tok.tk_addr

let rec step t =
  match Heap.pop t.eventq with
  | None -> false
  | Some e ->
    if e.ev_live () then begin
      Clock.advance_to t.nw_clock e.ev_time;
      e.ev_run ();
      true
    end
    else step t

let pump t = while step t do () done

let pending_events t = t.eventq.Heap.len

let rec await t tok =
  match tok.tk_result with
  | Some r -> r
  | None ->
    if step t then await t tok
    else begin
      (* Nothing left in the queue yet the exchange is open: the
         server parked it and armed no wakeup.  Fail the wait rather
         than spin forever. *)
      tok.tk_result <- Some (Error Errno.ETIMEDOUT);
      tok.tk_done_at <- Clock.now t.nw_clock;
      Metrics.incr t.c_timeout;
      Error Errno.ETIMEDOUT
    end

let call t ?(src = "client") ?timeout_ns ~addr payload =
  let timeout = match timeout_ns with Some v -> v | None -> t.timeout_ns in
  let prof =
    match t.plan with
    | None -> Fault.calm
    | Some p -> Fault.profile_for p addr
  in
  let cut =
    match t.plan with
    | None -> false
    | Some p -> Fault.partitioned p ~now:(Clock.now t.nw_clock) ~src ~dst:addr
  in
  if cut then begin
    (* The request sails into the void; the caller waits out the
       timeout. *)
    Clock.advance t.nw_clock timeout;
    note_fault t ~addr ~kind:"net.partition" ~verdict:"ETIMEDOUT" ~cost_ns:timeout;
    Metrics.incr t.c_timeout;
    Metrics.incr (interned t ("net.timeout." ^ addr));
    Error Errno.ETIMEDOUT
  end
  else
    match Hashtbl.find_opt t.endpoints addr with
    | None ->
      note_fault t ~addr ~kind:"net.refused" ~verdict:"ECONNREFUSED" ~cost_ns:0L;
      Error Errno.ECONNREFUSED
    | Some ep when not ep.up ->
      note_fault t ~addr ~kind:"net.refused" ~verdict:"ECONNREFUSED" ~cost_ns:0L;
      Error Errno.ECONNREFUSED
    | Some { hkind = Async _; _ } ->
      (* Synchronous bridge to an event-driven endpoint: submit and
         pump the event loop until this exchange completes. *)
      await t (submit t ~src ~timeout_ns:timeout ~addr payload)
    | Some ({ hkind = Sync handler; _ } as ep) ->
      if Fault.chance t.rng prof.Fault.jitter then begin
        let extra =
          Int64.of_int (Fault.int_below t.rng (Int64.to_int prof.Fault.max_jitter_ns))
        in
        Clock.advance t.nw_clock extra;
        note_fault t ~addr ~kind:"net.jitter" ~verdict:"ok" ~cost_ns:extra
      end;
      if Fault.chance t.rng prof.Fault.drop then begin
        (* Request lost in flight: the bytes left the sender, the
           handler never sees them. *)
        t.messages <- t.messages + 1;
        t.bytes <- t.bytes + String.length payload;
        Clock.advance t.nw_clock timeout;
        note_fault t ~addr ~kind:"net.drop" ~verdict:"ETIMEDOUT" ~cost_ns:timeout;
        Metrics.incr t.c_timeout;
        Metrics.incr (interned t ("net.timeout." ^ addr));
        Error Errno.ETIMEDOUT
      end
      else begin
        let service_start = Clock.now t.nw_clock in
        let note_busy () =
          ep.ep_stats.busy_ns <-
            Int64.add ep.ep_stats.busy_ns
              (Int64.sub (Clock.now t.nw_clock) service_start)
        in
        charge_transfer t (String.length payload);
        ep.ep_stats.calls <- ep.ep_stats.calls + 1;
        ep.ep_stats.bytes_in <- ep.ep_stats.bytes_in + String.length payload;
        match (try Ok (handler payload) with _ -> Error ()) with
        | Error () ->
          (* The handler blew up: contain the exception at the wire,
             charge the aborted response leg, surface a reset. *)
          charge_transfer t 0;
          note_busy ();
          note_fault t ~addr ~kind:"net.reset" ~verdict:"ECONNRESET"
            ~cost_ns:t.latency_ns;
          Error Errno.ECONNRESET
        | Ok response ->
          if Fault.chance t.rng prof.Fault.reset then begin
            charge_transfer t 0;
            note_busy ();
            note_fault t ~addr ~kind:"net.reset" ~verdict:"ECONNRESET"
              ~cost_ns:t.latency_ns;
            Error Errno.ECONNRESET
          end
          else if Fault.chance t.rng prof.Fault.drop then begin
            (* Response lost after the handler ran — the dangerous case
               for non-idempotent operations. *)
            t.messages <- t.messages + 1;
            t.bytes <- t.bytes + String.length response;
            note_busy ();
            Clock.advance t.nw_clock timeout;
            note_fault t ~addr ~kind:"net.drop" ~verdict:"ETIMEDOUT"
              ~cost_ns:timeout;
            Metrics.incr t.c_timeout;
            Metrics.incr (interned t ("net.timeout." ^ addr));
            Error Errno.ETIMEDOUT
          end
          else begin
            let response =
              if Fault.chance t.rng prof.Fault.truncate then begin
                note_fault t ~addr ~kind:"net.truncate" ~verdict:"ok" ~cost_ns:0L;
                Fault.truncate_string t.rng response
              end
              else if Fault.chance t.rng prof.Fault.corrupt then begin
                note_fault t ~addr ~kind:"net.corrupt" ~verdict:"ok" ~cost_ns:0L;
                Fault.flip_bytes t.rng response
              end
              else response
            in
            charge_transfer t (String.length response);
            ep.ep_stats.bytes_out <- ep.ep_stats.bytes_out + String.length response;
            note_busy ();
            Ok response
          end
      end

let stats t ~addr =
  Option.map (fun ep -> ep.ep_stats) (Hashtbl.find_opt t.endpoints addr)

let busy_ns t ~addr =
  match Hashtbl.find_opt t.endpoints addr with
  | Some ep -> ep.ep_stats.busy_ns
  | None -> 0L

let total_messages t = t.messages

let total_bytes t = t.bytes

(* {1 Endpoint groups} *)

let define_group t ~name ~addrs = Hashtbl.replace t.groups name addrs

let group_addrs t ~name =
  match Hashtbl.find_opt t.groups name with Some l -> l | None -> []

let drop_group t ~name = Hashtbl.remove t.groups name

(* Transport failures worth trying the next group member for.  A
   handler-level error (anything the endpoint answered) stops the
   sweep: the group members are replicas of one service, so an
   application verdict from one speaks for all. *)
let hedgeable = function
  | Errno.ETIMEDOUT | Errno.ECONNRESET | Errno.ECONNREFUSED
  | Errno.EHOSTUNREACH -> true
  | _ -> false

let call_any t ?(src = "client") ?timeout_ns ~group payload =
  let addrs =
    match Hashtbl.find_opt t.groups group with
    | Some l -> l
    | None -> [ group ]  (* a bare address is a group of one *)
  in
  let rec sweep last = function
    | [] ->
      (match last with
       | Some e -> Error e
       | None -> Error Errno.EHOSTUNREACH)
    | addr :: rest ->
      (match call t ~src ?timeout_ns ~addr payload with
       | Ok response -> Ok (addr, response)
       | Error e when hedgeable e && rest <> [] ->
         (* Hedged failover: this member is unreachable, the next may
            not be. *)
         Metrics.incr t.c_hedge;
         sweep (Some e) rest
       | Error e -> Error e)
  in
  sweep None addrs
