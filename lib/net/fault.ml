(* Deterministic fault injection: a seeded splitmix64 stream plus a
   declarative plan of probabilistic and scheduled faults. *)

type rng = { mutable state : int64 }

let rng seed = { state = seed }

(* splitmix64: tiny, well-distributed, and identical on every platform
   (all arithmetic is Int64, no host-word-size dependence). *)
let bits r =
  r.state <- Int64.add r.state 0x9E3779B97F4A7C15L;
  let z = r.state in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let uniform r =
  (* 53 high bits -> [0, 1). *)
  Int64.to_float (Int64.shift_right_logical (bits r) 11) /. 9007199254740992.0

let int_below r n =
  if n <= 0 then 0
  else Int64.to_int (Int64.rem (Int64.shift_right_logical (bits r) 1) (Int64.of_int n))

let chance r p = if p <= 0. then false else if p >= 1. then true else uniform r < p

type profile = {
  drop : float;
  reset : float;
  corrupt : float;
  truncate : float;
  jitter : float;
  max_jitter_ns : int64;
}

let calm =
  { drop = 0.; reset = 0.; corrupt = 0.; truncate = 0.; jitter = 0.;
    max_jitter_ns = 0L }

let profile ?(drop = 0.) ?(reset = 0.) ?(corrupt = 0.) ?(truncate = 0.)
    ?(jitter = 0.) ?(max_jitter_ns = 0L) () =
  { drop; reset; corrupt; truncate; jitter; max_jitter_ns }

(* Crash damage for a simulated stable-storage device (the Chirp WAL):
   the same seeded-stream discipline as the network profiles, but the
   faults model what a power cut does to a disk, not what a router does
   to a packet.  Damage is confined to bytes not yet fsync'd — that is
   the contract a WAL buys — plus an optional torn fragment of a write
   that was in flight when the power died. *)
type storage_profile = {
  torn_write : float;
      (** Probability a crash leaves a torn tail: either the last
          unsynced record cut mid-record, or (when everything was
          synced) a partial fragment of an in-flight record appended
          after the durable prefix. *)
  lose_tail : float;
      (** Probability the unsynced suffix loses whole records from the
          end (the page cache never reached the platter). *)
  flip : float;
      (** Probability of flipped bytes somewhere in the unsynced
          suffix (a sector written during the power dip). *)
}

let calm_storage = { torn_write = 0.; lose_tail = 0.; flip = 0. }

let storage_profile ?(torn_write = 0.) ?(lose_tail = 0.) ?(flip = 0.) () =
  { torn_write; lose_tail; flip }

type window = {
  from_ns : int64;
  until_ns : int64;
  between : string * string;
}

type plan = {
  seed : int64;
  default_profile : profile;
  per_endpoint : (string * profile) list;
  partitions : window list;
}

let plan ?(seed = 0L) ?(default_profile = calm) ?(per_endpoint = [])
    ?(partitions = []) () =
  { seed; default_profile; per_endpoint; partitions }

let profile_for p addr =
  match List.assoc_opt addr p.per_endpoint with
  | Some prof -> prof
  | None -> p.default_profile

let host_of addr =
  match String.index_opt addr ':' with
  | Some i -> String.sub addr 0 i
  | None -> addr

let partitioned p ~now ~src ~dst =
  let hs = host_of src and hd = host_of dst in
  List.exists
    (fun w ->
      now >= w.from_ns && now < w.until_ns
      &&
      let a, b = w.between in
      (String.equal hs a && String.equal hd b)
      || (String.equal hs b && String.equal hd a))
    p.partitions

(* --- corruption injectors ------------------------------------------- *)

let flip_bytes r s =
  let n = String.length s in
  if n = 0 then s
  else begin
    let b = Bytes.of_string s in
    let flips = 1 + int_below r 4 in
    for _ = 1 to flips do
      let i = int_below r n in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 + int_below r 255)))
    done;
    Bytes.to_string b
  end

let truncate_string r s =
  let n = String.length s in
  if n = 0 then s else String.sub s 0 (int_below r n)

let duplicate_slice r s =
  let n = String.length s in
  if n = 0 then s
  else begin
    let i = int_below r n in
    let len = 1 + int_below r (n - i) in
    let slice = String.sub s i len in
    String.sub s 0 (i + len) ^ slice ^ String.sub s (i + len) (n - i - len)
  end

let delete_slice r s =
  let n = String.length s in
  if n = 0 then s
  else begin
    let i = int_below r n in
    let len = 1 + int_below r (n - i) in
    String.sub s 0 i ^ String.sub s (i + len) (n - i - len)
  end

let insert_junk r s =
  let n = String.length s in
  let i = if n = 0 then 0 else int_below r (n + 1) in
  let junk = String.init (1 + int_below r 8) (fun _ -> Char.chr (int_below r 256)) in
  String.sub s 0 i ^ junk ^ String.sub s i (n - i)

let mangle r s =
  match int_below r 5 with
  | 0 -> flip_bytes r s
  | 1 -> truncate_string r s
  | 2 -> duplicate_slice r s
  | 3 -> delete_slice r s
  | _ -> insert_junk r s
