module Clock = Idbox_kernel.Clock
module Metrics = Idbox_kernel.Metrics
module Errno = Idbox_vfs.Errno

type state = Closed | Open | Half_open

let state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half_open"

type t = {
  br_clock : Clock.t;
  br_metrics : Metrics.t;
  br_prefix : string;
  br_subject : string;
  br_threshold : int;
  br_reset_ns : int64;
  br_probe_budget : int;
  br_on_transition : (string -> state -> unit) option;
  mutable br_state : state;
  mutable br_failures : int;  (* consecutive failures while closed *)
  mutable br_opened_at : int64;
  mutable br_probes_left : int;  (* probe grants remaining while half-open *)
  mutable br_last_errno : Errno.t;
  mutable br_trips : int;
}

let create ?(threshold = 3) ?(reset_ns = 500_000_000L) ?(probe_budget = 1)
    ?(prefix = "breaker") ?on_transition ~clock ~metrics subject =
  {
    br_clock = clock;
    br_metrics = metrics;
    br_prefix = prefix;
    br_subject = subject;
    br_threshold = max 1 threshold;
    br_reset_ns = Int64.max 1L reset_ns;
    br_probe_budget = max 1 probe_budget;
    br_on_transition = on_transition;
    br_state = Closed;
    br_failures = 0;
    br_opened_at = 0L;
    br_probes_left = 0;
    br_last_errno = Errno.EHOSTUNREACH;
    br_trips = 0;
  }

let state t = t.br_state
let subject t = t.br_subject
let last_errno t = t.br_last_errno
let trips t = t.br_trips

let metric t suffix =
  Metrics.incr (Metrics.counter t.br_metrics (t.br_prefix ^ "." ^ suffix))

let transition t st =
  t.br_state <- st;
  match t.br_on_transition with
  | None -> ()
  | Some f -> f t.br_subject st

(* Trip (or re-trip) open: every subsequent request short-circuits until
   the reset window has elapsed. *)
let trip t =
  t.br_opened_at <- Clock.now t.br_clock;
  t.br_failures <- 0;
  t.br_trips <- t.br_trips + 1;
  metric t "open";
  transition t Open

let allow t =
  match t.br_state with
  | Closed -> true
  | Open ->
    if Int64.sub (Clock.now t.br_clock) t.br_opened_at >= t.br_reset_ns
    then begin
      (* Reset window elapsed: go half-open and spend the first probe on
         this very request. *)
      metric t "half_open";
      transition t Half_open;
      t.br_probes_left <- t.br_probe_budget - 1;
      metric t "probe";
      true
    end
    else begin
      metric t "short_circuit";
      false
    end
  | Half_open ->
    if t.br_probes_left > 0 then begin
      t.br_probes_left <- t.br_probes_left - 1;
      metric t "probe";
      true
    end
    else begin
      metric t "short_circuit";
      false
    end

let success t =
  match t.br_state with
  | Closed -> t.br_failures <- 0
  | Half_open | Open ->
    (* A successful probe (or a success racing the trip): the replica is
       back — close and forget its history. *)
    t.br_failures <- 0;
    metric t "close";
    transition t Closed

let failure ?errno t =
  (match errno with Some e -> t.br_last_errno <- e | None -> ());
  match t.br_state with
  | Closed ->
    t.br_failures <- t.br_failures + 1;
    if t.br_failures >= t.br_threshold then trip t
  | Half_open ->
    (* The probe failed: straight back to open, new reset window. *)
    trip t
  | Open -> ()
