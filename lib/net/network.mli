(** The simulated network fabric connecting Chirp clients, servers, and
    the catalog.

    An in-memory message-passing network with an explicit latency and
    bandwidth model: every request/response pair charges two one-way
    trips to the shared world clock.  Endpoints are named by
    ["host:port"] strings; handlers are host-level closures (a server's
    dispatch loop).  Wire payloads are opaque strings — protocol
    libraries do their own framing, so serialization bugs are real
    bugs here, not type errors papered over.

    The fabric is fault-injectable: install a {!Fault.plan} and calls
    start losing messages, resetting mid-exchange, corrupting or
    truncating responses, and honouring scheduled partitions — all
    deterministically from the plan's seed and the simulated clock.
    Endpoints can also be crashed and restarted explicitly.  Every
    injected fault is counted in the attached metrics registry (both
    globally, e.g. [net.drop], and per endpoint, e.g.
    [net.drop.host:port]) and recorded as a span in the attached trace
    ring. *)

type t

type endpoint_stats = {
  mutable calls : int;
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable busy_ns : int64;
      (** Simulated time this endpoint spent servicing calls (both
          transfer legs plus handler time).  The cluster capacity
          model: aggregate throughput is bounded by the busiest
          endpoint, so N-way sharding divides the bottleneck. *)
}

val create :
  clock:Idbox_kernel.Clock.t ->
  ?latency_us:float ->
  ?bandwidth_mbps:float ->
  ?timeout_us:float ->
  ?metrics:Idbox_kernel.Metrics.t ->
  ?trace:Idbox_kernel.Trace.ring ->
  unit ->
  t
(** Default latency 100 µs one-way, bandwidth 100 Mbit/s — a 2005-era
    campus LAN.  [timeout_us] (default 1 s) is how long a caller waits
    for a lost message before seeing [ETIMEDOUT]; callers can override
    it per call.  [metrics] defaults to a private registry (pass the
    kernel's to fold network counters into one export); [trace], when
    given, receives one span per injected fault. *)

val clock : t -> Idbox_kernel.Clock.t

val metrics : t -> Idbox_kernel.Metrics.t
(** The registry fault and error counters land in. *)

val listen : t -> addr:string -> (string -> string) -> unit
(** Register a request handler at an address (replacing any previous
    listener).  The endpoint comes up listening. *)

val unlisten : t -> addr:string -> unit

val addresses : t -> string list
(** Listening addresses, sorted (crashed endpoints included). *)

val call :
  t ->
  ?src:string ->
  ?timeout_ns:int64 ->
  addr:string ->
  string ->
  (string, Idbox_vfs.Errno.t) result
(** Synchronous RPC: charges request transfer, runs the handler, charges
    response transfer.

    [src] (default ["client"]) names the calling host for partition
    matching.  Failure modes: [ECONNREFUSED] when nobody listens or the
    endpoint is crashed; [ETIMEDOUT] when a message is dropped or the
    path is partitioned (the caller's clock advances by the timeout);
    [ECONNRESET] when the exchange resets mid-flight — including when
    the handler itself raises: the exception is contained here, charged,
    counted ([net.reset]), and surfaced as this wire-level error, never
    propagated into the caller. *)

(** {1 Asynchronous exchanges}

    The event-driven half of the fabric.  [submit] starts an exchange
    and returns immediately with a completion {!token}; the request
    leg's faults are decided (deterministically, in submission order)
    at submit time but the clock does not move.  Deliveries, responses
    and timeouts become events on a queue ordered by (time, sequence);
    executing an event moves the shared clock forward to the event's
    time.  Every submitted exchange arms exactly one timeout; a token
    is completed exactly once, by whichever of response/timeout fires
    first — a response that loses the race is discarded and counted as
    [net.late_reply] (globally and per endpoint), never delivered.

    [listen_async] registers an endpoint whose handler receives a
    {!conn} it may answer later with {!respond} — the hook an
    event-driven server uses to park requests.  Submitting to a plain
    {!listen} endpoint works too (the handler runs inline at delivery
    and its answer is scheduled back), as does {!call}-ing an async
    endpoint (the call pumps the event loop until its own exchange
    completes). *)

type token
(** The client half of an in-flight exchange. *)

type conn
(** The server half: handed to an async handler, consumed by
    {!respond}. *)

val listen_async : t -> addr:string -> (conn -> string -> unit) -> unit
(** Register an event-driven handler at an address (replacing any
    previous listener).  The handler is invoked at request-delivery
    time and may call {!respond} immediately or hold the [conn] and
    respond from a later event. *)

val submit :
  t -> ?src:string -> ?timeout_ns:int64 -> addr:string -> string -> token
(** Start an exchange without blocking.  Unreachable endpoints
    complete the token immediately ([ECONNREFUSED]); partitions and
    request drops leave it to the armed timeout; otherwise delivery is
    scheduled one transfer time (plus any jitter) ahead. *)

val respond : t -> conn -> string -> unit
(** Answer a delivered request: response-leg faults are decided now,
    and the completion (or reset) is scheduled one transfer time
    ahead.  Responding to an exchange whose token already completed
    discards the response and counts [net.late_reply] — it consumes no
    fault randomness, so seeded runs stay deterministic. *)

val at : t -> int64 -> (unit -> unit) -> unit
(** Schedule a callback at an absolute simulated time — the hook an
    event-driven server uses to arm batch flushes and sweeps. *)

val poll : token -> (string, Idbox_vfs.Errno.t) result option
(** The exchange's result, or [None] while still in flight. *)

val completed_at : token -> int64 option
(** When the token completed (simulated clock), once it has. *)

val token_addr : token -> string
(** The address the exchange was submitted to. *)

val step : t -> bool
(** Execute the next live event: advance the clock to its time and run
    it.  Dead events (a timeout whose token already completed) are
    skipped without advancing the clock.  [false] when the queue is
    empty. *)

val pump : t -> unit
(** Run {!step} until the queue is empty. *)

val pending_events : t -> int
(** Queue length, dead events included (for tests and introspection). *)

val await : t -> token -> (string, Idbox_vfs.Errno.t) result
(** Pump the event loop until this token completes.  If the queue
    drains while the exchange is still open (a server parked it and
    armed no wakeup), the wait fails with [ETIMEDOUT]. *)

val stats : t -> addr:string -> endpoint_stats option

val busy_ns : t -> addr:string -> int64
(** Accumulated service time at [addr] ([0L] for unknown endpoints). *)

val total_messages : t -> int
val total_bytes : t -> int

(** {1 Endpoint groups}

    A group names an ordered set of addresses standing in for one
    logical service (the replica set of a shard).  {!call_any} sweeps
    the members in order, failing over on transport-level errors
    ([ETIMEDOUT]/[ECONNRESET]/[ECONNREFUSED]/[EHOSTUNREACH], counted as
    [net.hedge]) and stopping on the first reachable member's answer —
    an application-level error from a live member is a verdict, not a
    reason to shop around. *)

val define_group : t -> name:string -> addrs:string list -> unit
(** Define (or redefine) group [name]. *)

val group_addrs : t -> name:string -> string list
(** Members of [name], in failover order ([[]] when undefined). *)

val drop_group : t -> name:string -> unit

val call_any :
  t ->
  ?src:string ->
  ?timeout_ns:int64 ->
  group:string ->
  string ->
  (string * string, Idbox_vfs.Errno.t) result
(** [call_any t ~group payload] calls the group's members in order
    until one answers; returns the answering address and its response.
    An unknown group name is treated as a group of one literal
    address.  The last transport error is returned when every member
    is unreachable. *)

(** {1 Fault injection} *)

val set_fault_plan : t -> Fault.plan -> unit
(** Install (or replace) the fault plan; reseeds the fault stream from
    [plan.seed], so installing the same plan twice replays the same
    faults. *)

val clear_fault_plan : t -> unit
(** Back to a perfect network. *)

val crash : t -> addr:string -> unit
(** Take a listening endpoint down: calls see [ECONNREFUSED] until
    {!restart}.  The handler stays registered.  No-op for unknown
    addresses. *)

val restart : t -> addr:string -> unit
(** Bring a crashed endpoint back up.  No-op for unknown addresses. *)

val is_up : t -> addr:string -> bool
(** True when the address is registered and not crashed. *)
