(** A per-peer circuit breaker: closed / open / half-open.

    Fed by the caller's own verdicts — {!failure} on a transport-level
    fault (timeout, reset, unreachable), {!success} on any answered
    exchange — and consulted with {!allow} before spending a timeout on
    a peer that has been failing.  [threshold] consecutive failures
    trip the breaker open; for [reset_ns] thereafter {!allow} refuses
    ({e short-circuits}) so the caller can skip the peer instead of
    waiting out another timeout.  Once the window elapses the breaker
    goes {e half-open} and grants [probe_budget] trial requests: one
    success closes it, one failure re-opens it with a fresh window.

    Deliberately not a retry policy: the breaker never sleeps, never
    retries, and holds no request state.  It is a memory of recent
    failure shared by all requests to one peer, so hedged reads,
    replica fan-out and failover sweeps can skip known-bad nodes and
    still probe them back to health.

    Every decision is counted under [<prefix>.<event>]:
    [open] (tripped), [half_open], [probe], [close], [short_circuit].
    Shed responses (EAGAIN) must NOT be fed to {!failure} — a live
    server shedding load is an answer, not an absence. *)

type state = Closed | Open | Half_open

val state_name : state -> string

type t

val create :
  ?threshold:int ->
  ?reset_ns:int64 ->
  ?probe_budget:int ->
  ?prefix:string ->
  ?on_transition:(string -> state -> unit) ->
  clock:Idbox_kernel.Clock.t ->
  metrics:Idbox_kernel.Metrics.t ->
  string ->
  t
(** [create ~clock ~metrics subject] — [subject] names the guarded
    peer (for transition callbacks and debugging).  [threshold]
    (default 3) consecutive failures trip open; [reset_ns] (default
    500 ms) is the open window; [probe_budget] (default 1) bounds
    half-open trial requests; [prefix] (default ["breaker"]) namespaces
    the counters.  [on_transition] fires on every state change with
    the subject and the new state — how callers span transitions into
    their trace ring. *)

val state : t -> state
val subject : t -> string

val allow : t -> bool
(** May a request go to this peer now?  [false] means short-circuit:
    skip the peer (the caller decides what that means — next replica,
    fast error, pending-repair note).  Calling [allow] on an open
    breaker whose reset window has elapsed moves it half-open and
    spends the first probe. *)

val success : t -> unit
(** The peer answered (any application verdict counts — even an error
    verdict proves liveness).  Closes a half-open breaker. *)

val failure : ?errno:Idbox_vfs.Errno.t -> t -> unit
(** The peer failed at transport level.  [errno] is remembered and
    reported by {!last_errno} so short-circuited callers can surface
    the real reason the peer was abandoned. *)

val last_errno : t -> Idbox_vfs.Errno.t
(** The errno of the most recent recorded failure
    ([EHOSTUNREACH] before any). *)

val trips : t -> int
(** Times this breaker has tripped open (including re-opens). *)
