(** Deterministic fault injection for the simulated network.

    Everything here is a pure function of a seed and the simulated
    clock: the same {!plan} applied to the same sequence of calls
    produces the same faults, byte for byte.  Probabilistic faults
    (drops, resets, corruption) draw from a seeded splitmix64 stream;
    scheduled faults (partitions) are clock windows.

    The corruption primitives ({!flip_bytes}, {!truncate_string},
    {!duplicate_slice}, {!mangle}) are exported so protocol fuzzers can
    feed decoders exactly the damage the network can inflict. *)

(** {1 Deterministic random stream} *)

type rng

val rng : int64 -> rng
(** A splitmix64 stream seeded with the given value. *)

val bits : rng -> int64
(** The next 64 pseudo-random bits. *)

val uniform : rng -> float
(** The next draw in [[0, 1)]. *)

val int_below : rng -> int -> int
(** [int_below r n] is uniform in [[0, n)]; [0] when [n <= 0]. *)

val chance : rng -> float -> bool
(** [chance r p] is true with probability [p].  Draws nothing when
    [p <= 0.] or [p >= 1.], so a calm profile perturbs no stream. *)

(** {1 Fault profiles} *)

type profile = {
  drop : float;
      (** Per-leg probability that a message vanishes in flight.  A
          dropped request never reaches the handler; a dropped response
          vanishes after the handler ran.  Either way the caller waits
          out its timeout and sees [ETIMEDOUT]. *)
  reset : float;
      (** Probability the connection resets mid-exchange: the handler
          runs, but the caller sees [ECONNRESET] instead of the
          response. *)
  corrupt : float;  (** Probability the response arrives with flipped bytes. *)
  truncate : float;  (** Probability the response arrives cut short. *)
  jitter : float;  (** Probability of added one-way latency. *)
  max_jitter_ns : int64;  (** Upper bound on the added latency. *)
}

val calm : profile
(** All probabilities zero: a perfect network. *)

val profile :
  ?drop:float ->
  ?reset:float ->
  ?corrupt:float ->
  ?truncate:float ->
  ?jitter:float ->
  ?max_jitter_ns:int64 ->
  unit ->
  profile
(** {!calm} with the given fields overridden. *)

(** {1 Storage fault profiles}

    Crash damage for a simulated stable-storage device (the Chirp WAL,
    {!Idbox_chirp.Wal}).  Damage is drawn from the same seeded-stream
    discipline as the network profiles but models a power cut hitting a
    disk: it is confined to bytes not yet synced — the contract a WAL
    buys — plus, possibly, a torn fragment of a write that was in
    flight when the power died. *)

type storage_profile = {
  torn_write : float;
      (** Probability a crash leaves a torn tail: the last unsynced
          record cut mid-record, or — when everything was synced — a
          partial fragment of an in-flight record appended after the
          durable prefix.  Recovery must discard it by checksum. *)
  lose_tail : float;
      (** Probability the unsynced suffix loses whole records from the
          end (the page cache never reached the platter). *)
  flip : float;
      (** Probability of flipped bytes somewhere in the unsynced suffix
          (a sector being written during the power dip). *)
}

val calm_storage : storage_profile
(** All probabilities zero: an ideal disk. *)

val storage_profile :
  ?torn_write:float -> ?lose_tail:float -> ?flip:float -> unit ->
  storage_profile
(** {!calm_storage} with the given fields overridden. *)

(** {1 Fault plans} *)

type window = {
  from_ns : int64;
  until_ns : int64;
  between : string * string;
      (** Two host names (the part of an address before [':']); traffic
          in either direction between them is cut while the simulated
          clock is in [[from_ns, until_ns)]. *)
}

type plan = {
  seed : int64;
  default_profile : profile;
  per_endpoint : (string * profile) list;
      (** Overrides, keyed by destination address. *)
  partitions : window list;
}

val plan :
  ?seed:int64 ->
  ?default_profile:profile ->
  ?per_endpoint:(string * profile) list ->
  ?partitions:window list ->
  unit ->
  plan
(** Defaults: seed 0, calm everywhere, no partitions. *)

val profile_for : plan -> string -> profile
(** The effective profile for a destination address. *)

val host_of : string -> string
(** ["host:port"] -> ["host"] (the whole string when there is no [':']). *)

val partitioned : plan -> now:int64 -> src:string -> dst:string -> bool
(** Is traffic from [src] to [dst] cut at simulated time [now]?
    Addresses are compared by host. *)

(** {1 Corruption injectors} *)

val flip_bytes : rng -> string -> string
(** Flip 1–4 bytes at random positions (identity on [""]). *)

val truncate_string : rng -> string -> string
(** Cut the string at a random point strictly before its end. *)

val duplicate_slice : rng -> string -> string
(** Repeat a random slice in place — the classic retransmit stutter. *)

val mangle : rng -> string -> string
(** One of {!flip_bytes}, {!truncate_string}, {!duplicate_slice}, a
    random-junk insertion, or a slice deletion, chosen by the stream:
    the full damage model a decoder must stay total under. *)
