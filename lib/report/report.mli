(** Experiment reports: regenerate every table and figure of the paper
    and print it in a paper-shaped textual form.

    Each [fig*] function runs the experiment from scratch (fresh
    simulated hosts) and prints rows comparing measured values with the
    paper's published ones where the paper gives numbers, or with its
    qualitative claim where it gives bars.  [all] prints everything in
    paper order — this is what [bench/main.exe] and EXPERIMENTS.md are
    built from. *)

val fig1 : unit -> unit
(** The identity-mapping property matrix, derived by probing. *)

val fig2 : unit -> unit
(** The interactive-session semantics, checked step by step. *)

val fig3 : unit -> unit
(** The distributed Chirp scenario with per-step outcomes. *)

val fig4 : unit -> unit
(** Per-syscall interposition accounting (context switches, PEEK/POKE
    words, delegated calls, channel bytes). *)

val fig5a : ?iters:int -> unit -> unit
(** System-call latency, unmodified vs boxed. *)

val fig5b : ?scale:float -> unit -> unit
(** Application runtimes and overheads vs the paper's percentages. *)

val fig6 : ?scale:float -> unit -> unit
(** The hierarchical-namespace tree and the in-kernel ablation. *)

val ablations : ?scale:float -> unit -> unit
(** Design-choice sweeps: I/O-channel copy cost (mmap hypothetical),
    context-switch price, small-I/O threshold, ACL length. *)

val all : ?scale:float -> unit -> unit
(** Everything, in paper order. *)

(** {1 Metrics export}

    The kernel-wide metrics registry (see {!Idbox_kernel.Metrics}) as a
    machine-readable JSON block, schema ["idbox-metrics/1"]:

    {v
{"schema":"idbox-metrics/1",
 "derived":{"acl_cache_hit_rate":..,"syscalls":..,"trapped":..,
            "context_switches":..,"delegated":..,"sim_time_ns":..},
 "counters":{"syscall.open":..,"acl.cache.hit":..,"box.deny":..,...},
 "histograms":{"syscall.open.ns":{"count":..,"sum_ns":..,"max_ns":..,
               "mean_ns":..,"p50_ns":..,"p95_ns":..,"p99_ns":..},...}}
    v} *)

val metrics_json :
  ?extra:(string * string) list -> Idbox_kernel.Kernel.t -> string
(** The metrics block for [kernel].  [extra] prepends additional
    top-level fields; each value must already be rendered JSON. *)

val trace_json : Idbox_kernel.Kernel.t -> string
(** The kernel's trace ring as JSON (see {!Idbox_kernel.Trace.to_json}). *)

val metrics_workload : unit -> Idbox_kernel.Kernel.t
(** Run a representative boxed session (allowed and denied operations,
    repeated ACL checks) and return its kernel for export. *)

val metrics : ?trace:bool -> unit -> unit
(** Run {!metrics_workload} and print {!metrics_json} (and, with
    [trace], {!trace_json}) to stdout. *)
