module Kernel = Idbox_kernel.Kernel
module Account = Idbox_kernel.Account
module Libc = Idbox_kernel.Libc
module Program = Idbox_kernel.Program
module Clock = Idbox_kernel.Clock
module Cost = Idbox_kernel.Cost
module Box = Idbox.Box
module Network = Idbox_net.Network
module Fault = Idbox_net.Fault
module Ca = Idbox_auth.Ca
module Delegation = Idbox_auth.Delegation
module Metrics = Idbox_kernel.Metrics
module Credential = Idbox_auth.Credential
module Negotiate = Idbox_auth.Negotiate
module Server = Idbox_chirp.Server
module Client = Idbox_chirp.Client
module Probe = Idbox_accounts.Probe
module Microbench = Idbox_workload.Microbench
module Runner = Idbox_workload.Runner
module Apps = Idbox_workload.Apps
module Acl = Idbox_acl.Acl
module Entry = Idbox_acl.Entry
module Right = Idbox_acl.Right
module Rights = Idbox_acl.Rights
module Principal = Idbox_identity.Principal
module Subject = Idbox_identity.Subject
module Hierarchy = Idbox_identity.Hierarchy
module Fs = Idbox_vfs.Fs
module Errno = Idbox_vfs.Errno

let say fmt = Printf.printf (fmt ^^ "\n%!")

let heading title =
  say "";
  say "%s" (String.make 78 '=');
  say "%s" title;
  say "%s" (String.make 78 '=')

let ok ctx = function
  | Ok v -> v
  | Error e -> failwith (ctx ^ ": " ^ Errno.message e)

(* ------------------------------------------------------------------ *)

let fig1 () =
  heading "Figure 1 - Identity mapping methods (every cell derived by probing)";
  let rows = Probe.rows () in
  print_string (Probe.render_table rows);
  let mismatches =
    List.filter
      (fun (r : Probe.row) ->
        match Probe.paper_row r.Probe.r_scheme with
        | Some p -> p <> r
        | None -> true)
      rows
  in
  if mismatches = [] then
    say "paper check: all %d rows match Figure 1 exactly." (List.length rows)
  else
    List.iter
      (fun (r : Probe.row) -> say "paper check: MISMATCH on %S" r.Probe.r_scheme)
      mismatches

(* ------------------------------------------------------------------ *)

let fig2 () =
  heading "Figure 2 - Identity boxing in an interactive session";
  let kernel = Kernel.create () in
  let dthain =
    match Kernel.add_user kernel "dthain" with Ok e -> e | Error m -> failwith m
  in
  let fs = Kernel.fs kernel in
  ok "secret"
    (Fs.write_file fs ~uid:dthain.Account.uid ~mode:0o600 "/home/dthain/secret" "ssh!");
  let box =
    match
      Box.create kernel ~supervisor_uid:dthain.Account.uid
        ~identity:(Principal.of_string "Freddy") ()
    with
    | Ok b -> b
    | Error e -> failwith (Errno.message e)
  in
  let step what expect actual =
    say "  %-44s expect %-8s got %-8s %s" what expect actual
      (if String.equal expect actual then "OK" else "** MISMATCH **")
  in
  let pid =
    Box.spawn_main box
      ~main:(fun _ ->
        let home = Option.get (Libc.getenv "HOME") in
        step "whoami" "Freddy" (Libc.get_user_name ());
        step "cat /home/dthain/secret" "EACCES"
          (match Libc.read_file "/home/dthain/secret" with
           | Error e -> Errno.to_string e
           | Ok _ -> "read!");
        step "echo data > ~/mydata" "ok"
          (match Libc.write_file (home ^ "/mydata") ~contents:"data" with
           | Ok () -> "ok"
           | Error e -> Errno.to_string e);
        step "cat ~/mydata" "data"
          (match Libc.read_file (home ^ "/mydata") with
           | Ok s -> s
           | Error e -> Errno.to_string e);
        step "head -1 /etc/passwd names Freddy" "yes"
          (match Libc.read_file "/etc/passwd" with
           | Ok text ->
             (match String.split_on_char ':' text with
              | "Freddy" :: _ -> "yes"
              | _ -> "no")
           | Error _ -> "no");
        0)
      ~args:[ "session" ]
  in
  Kernel.run kernel;
  say "  session exit: %s; trapped syscalls: %d"
    (match Kernel.exit_code kernel pid with Some c -> string_of_int c | None -> "?")
    (Kernel.stats kernel).Kernel.trapped

(* ------------------------------------------------------------------ *)

let fig3 () =
  heading "Figure 3 - Identity boxing in a distributed system (Chirp)";
  Kernel.with_fresh_programs (fun () ->
      let clock = Clock.create () in
      let net = Network.create ~clock () in
      let kernel = Kernel.create ~clock () in
      let owner =
        match Kernel.add_user kernel "chirpuser" with
        | Ok e -> e
        | Error m -> failwith m
      in
      let ca = Ca.create ~name:"UnivNowhere CA" in
      let root_acl =
        Acl.of_entries
          [
            Entry.make ~pattern:"globus:/O=UnivNowhere/*"
              ~reserve:(Rights.of_string_exn "rwlaxd")
              (Rights.of_string_exn "rl");
          ]
      in
      let acceptor = Negotiate.acceptor ~trusted_cas:[ ca ] () in
      let server =
        ok "server"
          (Server.create ~kernel ~net ~addr:"alpha.grid.edu:9094"
             ~owner_uid:owner.Account.uid ~export:"/home/chirpuser/export"
             ~acceptor ~root_acl ())
      in
      Program.register "sim" (fun _ ->
          Libc.compute_us 40_000.;
          match
            Libc.write_file "out.dat" ~contents:("by " ^ Libc.get_user_name ())
          with
          | Ok () -> 0
          | Error _ -> 1);
      let cert = Ca.issue ca (Subject.of_string_exn "/O=UnivNowhere/CN=Fred") in
      let c =
        match
          Client.connect net ~addr:"alpha.grid.edu:9094"
            ~credentials:[ Credential.Gsi cert ]
        with
        | Ok c -> c
        | Error m -> failwith m
      in
      let step n what f =
        let m0 = Network.total_messages net and t0 = Clock.now clock in
        let outcome = f () in
        say "  %d. %-28s %-10s (%d msgs, %.3f ms)" n what outcome
          (Network.total_messages net - m0)
          (Int64.to_float (Int64.sub (Clock.now clock) t0) /. 1e6)
      in
      say "  authenticated as %s via %s" (Client.principal c) (Client.auth_method c);
      step 1 "mkdir /work" (fun () ->
          match Client.mkdir c "/work" with Ok () -> "ok" | Error e -> Errno.to_string e);
      step 2 "cd /work (implicit)" (fun () -> "ok");
      step 3 "put sim.exe" (fun () ->
          match Client.put c ~path:"/work/sim.exe" ~data:(Program.marker "sim") with
          | Ok () -> "ok"
          | Error e -> Errno.to_string e);
      step 4 "exec sim.exe" (fun () ->
          match Client.exec c ~path:"/work/sim.exe" ~args:[ "sim.exe" ] () with
          | Ok code -> Printf.sprintf "exit %d" code
          | Error e -> Errno.to_string e);
      step 5 "get out.dat" (fun () ->
          match Client.get c "/work/out.dat" with
          | Ok data -> Printf.sprintf "%d bytes" (String.length data)
          | Error e -> Errno.to_string e);
      say "  /work ACL after reserve-mkdir:";
      print_string ("    " ^ ok "getacl" (Client.getacl c "/work"));
      say "  remote execs served: %d; output contents name the grid identity: %b"
        (Server.exec_count server)
        (match Client.get c "/work/out.dat" with
         | Ok data -> data = "by globus:/O=UnivNowhere/CN=Fred"
         | Error _ -> false))

(* ------------------------------------------------------------------ *)

let fig4 () =
  heading "Figure 4 - System call trapping: per-call interposition work";
  say "%-14s %10s %12s %11s %14s" "call" "ctx sw" "peek/poke(w)" "delegated"
    "channel bytes";
  say "%s" (String.make 66 '-');
  List.iter
    (fun (r : Microbench.trap_row) ->
      say "%-14s %10d %12d %11d %14d" r.Microbench.tr_call
        r.Microbench.tr_context_switches r.Microbench.tr_peek_poke_words
        r.Microbench.tr_delegated r.Microbench.tr_channel_bytes)
    (Microbench.fig4 ());
  say "paper check: >= 6 context switches per trapped call (Fig. 4); bulk";
  say "transfers move through the I/O channel, small ones by PEEK/POKE."

(* ------------------------------------------------------------------ *)

let fig5a ?(iters = 2000) () =
  heading "Figure 5(a) - System call latency (simulated us per call)";
  say "%-14s %12s %12s %10s" "call" "unmodified" "identity box" "slowdown";
  say "%s" (String.make 52 '-');
  List.iter
    (fun (r : Microbench.row) ->
      say "%-14s %12.2f %12.2f %9.1fx" r.Microbench.mb_call r.Microbench.mb_direct_us
        r.Microbench.mb_boxed_us r.Microbench.mb_slowdown)
    (Microbench.fig5a ~iters ());
  say "paper check: \"each call is slowed down by an order of magnitude\";";
  say "bulk I/O amortizes the trap across the payload, as in the paper's bars."

(* ------------------------------------------------------------------ *)

let fig5b ?(scale = 0.1) () =
  heading
    (Printf.sprintf
       "Figure 5(b) - Application runtime (scale %.2f of full size)" scale);
  say "%-8s %12s %12s %12s %12s" "app" "direct (s)" "boxed (s)" "overhead"
    "paper";
  say "%s" (String.make 60 '-');
  let rows = Runner.fig5b ~scale () in
  List.iter
    (fun (c : Runner.comparison) ->
      say "%-8s %12.1f %12.1f %+11.1f%% %+11.1f%%" c.Runner.c_app
        c.Runner.c_direct_s c.Runner.c_boxed_s c.Runner.c_overhead_pct
        c.Runner.c_paper_pct)
    rows;
  say "paper check: scientific applications 0.7-6.5%%; make ~35%%.";
  let sci =
    List.filter (fun c -> not (String.equal c.Runner.c_app "make")) rows
  in
  let all_small = List.for_all (fun c -> c.Runner.c_overhead_pct < 10.) sci in
  let make_big =
    List.exists
      (fun c -> String.equal c.Runner.c_app "make" && c.Runner.c_overhead_pct > 25.)
      rows
  in
  say "shape holds: science apps < 10%%: %b; make > 25%%: %b" all_small make_big

(* ------------------------------------------------------------------ *)

let fig6 ?(scale = 0.05) () =
  heading "Figure 6 - Hierarchical identity and the in-kernel identity box";
  let ns = Hierarchy.create () in
  let root = Hierarchy.root ns in
  let dthain = Result.get_ok (Hierarchy.create_child root "dthain") in
  let httpd = Result.get_ok (Hierarchy.create_child dthain "httpd") in
  let grid = Result.get_ok (Hierarchy.create_child dthain "grid") in
  ignore (Result.get_ok (Hierarchy.create_child httpd "webapp"));
  ignore (Result.get_ok (Hierarchy.create_child grid "visitor"));
  ignore (Hierarchy.create_anonymous grid);
  ignore (Hierarchy.create_anonymous grid);
  ignore (Result.get_ok (Hierarchy.create_child grid "/O=UnivNowhere/CN=Freddy"));
  ignore (Result.get_ok (Hierarchy.create_child grid "/O=UnivNowhere/CN=George"));
  Hierarchy.pp_tree Format.std_formatter ns;
  Format.pp_print_flush Format.std_formatter ();
  say "";
  say "ablation: the same workloads under the ptrace box vs an in-kernel box";
  say "%-8s %14s %16s" "app" "ptrace box" "in-kernel box";
  say "%s" (String.make 40 '-');
  List.iter
    (fun (app, boxed, kboxed) ->
      say "%-8s %+13.1f%% %+15.1f%%" app boxed kboxed)
    (Runner.fig6_ablation ~scale ());
  say "paper check: an OS-native identity box would keep the protection and";
  say "shed the interposition cost - the paper's concluding proposal."

(* ------------------------------------------------------------------ *)

let ablations ?(scale = 0.02) () =
  heading "Ablations - design-choice sweeps";

  say "A. The extra I/O-channel copy (8 KB boxed read; copy cost per byte)";
  say "   %-28s %12s" "configuration" "us/call";
  List.iter
    (fun (label, copy_byte_ns) ->
      let cost = { Cost.default with Cost.copy_byte_ns } in
      say "   %-28s %12.2f" label (Microbench.boxed_read_us ~cost ~bytes:8192 ()))
    [
      ("mmap of /proc/pid/mem (0.00)", 0.0);
      ("memcpy via channel (0.35)", 0.35);
      ("slow copy (0.70)", 0.7);
      ("very slow copy (1.40)", 1.4);
    ];
  say "   (the paper's channel exists because modern kernels forbid the mmap)";
  say "";

  say "B. Context-switch price vs make overhead (the trap tax)";
  say "   %-28s %12s" "context switch (ns)" "make overhead";
  List.iter
    (fun cs ->
      let cost = { Cost.default with Cost.context_switch = Int64.of_int cs } in
      let d = Runner.run ~cost Apps.make_build Runner.Direct ~scale in
      let b = Runner.run ~cost Apps.make_build Runner.Boxed ~scale in
      say "   %-28d %+11.1f%%" cs
        ((b.Runner.m_runtime_s -. d.Runner.m_runtime_s)
         /. d.Runner.m_runtime_s *. 100.))
    [ 450; 900; 1800; 3600 ];
  say "";

  say "C. Small-I/O threshold (boxed 512-byte read: PEEK/POKE vs channel)";
  say "   %-28s %12s" "threshold (bytes)" "us/call";
  List.iter
    (fun threshold ->
      say "   %-28d %12.2f"
        threshold
        (Microbench.boxed_read_us ~small_io_threshold:threshold ~bytes:512 ()))
    [ 0; 64; 512; 4096 ];
  say "";

  say "D. Scale invariance of Fig. 5(b) overheads (ibis and make)";
  say "   %-12s %14s %14s" "scale" "ibis" "make";
  List.iter
    (fun s ->
      let pct spec =
        let d = Runner.run spec Runner.Direct ~scale:s in
        let b = Runner.run spec Runner.Boxed ~scale:s in
        (b.Runner.m_runtime_s -. d.Runner.m_runtime_s) /. d.Runner.m_runtime_s *. 100.
      in
      say "   %-12.3f %+13.2f%% %+13.2f%%" s (pct Apps.ibis) (pct Apps.make_build))
    [ 0.01; 0.05; 0.1 ];
  say "   (percentages are scale-free: the default 0.1 runs are faithful)";
  say "";

  say "E. ACL length vs per-check evaluation charge (simulated ns)";
  let kernel = Kernel.create () in
  let sup = Kernel.make_view kernel ~uid:0 () in
  let enforce = Idbox.Enforce.create kernel ~supervisor:sup () in
  say "   %-28s %12s" "entries" "ns/check";
  List.iter
    (fun n ->
      let dir = Printf.sprintf "/acl%d" n in
      ok "mkdir" (Fs.mkdir_p (Kernel.fs kernel) ~uid:0 dir);
      let entries =
        List.init n (fun i ->
            Entry.make
              ~pattern:(Printf.sprintf "unix:user%d" i)
              (Rights.of_string_exn "rl"))
      in
      ok "acl" (Idbox.Enforce.write_acl enforce ~dir (Acl.of_entries entries));
      (* Warm the cache, then measure the steady-state check. *)
      let who = Principal.of_string "unix:user0" in
      ignore (Idbox.Enforce.check_in_dir enforce ~identity:who ~dir Right.Read);
      let t0 = Kernel.now kernel in
      let reps = 100 in
      for _ = 1 to reps do
        ignore (Idbox.Enforce.check_in_dir enforce ~identity:who ~dir Right.Read)
      done;
      say "   %-28d %12.0f" n
        (Int64.to_float (Int64.sub (Kernel.now kernel) t0) /. float_of_int reps))
    [ 1; 10; 100; 1000 ]

(* ------------------------------------------------------------------ *)

(* The machine-readable metrics block: schema "idbox-metrics/1".
   One JSON object with the raw registry (counters + histograms) and a
   few derived figures — notably the ACL cache hit rate — that
   trajectory tracking (BENCH_*.json) wants precomputed. *)
let metrics_json ?(extra = []) kernel =
  let module Metrics = Idbox_kernel.Metrics in
  let m = Kernel.metrics kernel in
  let stats = Kernel.stats kernel in
  let hit = Metrics.counter_value_of m "acl.cache.hit" in
  let miss = Metrics.counter_value_of m "acl.cache.miss" in
  let hit_rate =
    if hit + miss = 0 then 0.0
    else float_of_int hit /. float_of_int (hit + miss)
  in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\"schema\":\"idbox-metrics/1\",";
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf
        (Printf.sprintf "\"%s\":%s," (Metrics.escape_json k) v))
    extra;
  Buffer.add_string buf
    (Printf.sprintf
       "\"derived\":{\"acl_cache_hit_rate\":%.4f,\"syscalls\":%d,\"trapped\":%d,\"context_switches\":%d,\"delegated\":%d,\"sim_time_ns\":%Ld},"
       hit_rate stats.Kernel.syscalls stats.Kernel.trapped
       stats.Kernel.context_switches stats.Kernel.delegated (Kernel.now kernel));
  (* Splice the registry's {"counters":..,"histograms":..} fields into
     this object: drop its outer braces. *)
  let registry = Metrics.to_json m in
  Buffer.add_string buf (String.sub registry 1 (String.length registry - 2));
  Buffer.add_char buf '}';
  Buffer.contents buf

let trace_json kernel =
  Idbox_kernel.Trace.to_json (Kernel.trace_ring kernel)

(* A representative boxed session that exercises the instrumented
   layers: allowed and denied file operations, directory management,
   and enough repeated checks to show cache hits.  Returns the kernel
   so callers can export its registry. *)
let metrics_workload () =
  let kernel = Kernel.create () in
  let dthain =
    match Kernel.add_user kernel "dthain" with Ok e -> e | Error m -> failwith m
  in
  let fs = Kernel.fs kernel in
  ok "secret"
    (Fs.write_file fs ~uid:dthain.Account.uid ~mode:0o600 "/home/dthain/secret"
       "ssh!");
  let box =
    match
      Box.create kernel ~supervisor_uid:dthain.Account.uid
        ~identity:(Principal.of_string "globus:/O=UnivNowhere/CN=Freddy") ()
    with
    | Ok b -> b
    | Error e -> failwith (Errno.message e)
  in
  ignore
    (Box.spawn_main box
       ~main:(fun _ ->
         let home = Option.get (Libc.getenv "HOME") in
         ignore (Libc.get_user_name ());
         ignore (Libc.mkdir ~mode:0o755 (home ^ "/work"));
         for i = 1 to 16 do
           let path = Printf.sprintf "%s/work/f%d" home i in
           ignore (Libc.write_file path ~contents:(String.make 64 'x'));
           ignore (Libc.read_file path)
         done;
         ignore (Libc.readdir (home ^ "/work"));
         (* Denied probes: outside the box's grant. *)
         ignore (Libc.read_file "/home/dthain/secret");
         ignore (Libc.unlink "/etc/passwd");
         ignore (Libc.stat home);
         0)
       ~args:[ "metrics" ]);
  Kernel.run kernel;
  (* A short Chirp exchange over a deliberately lossy network that
     shares the kernel's registry, clock, and trace ring — so the stats
     export also carries the fault-model counters (net.drop,
     net.timeout, chirp.retry, chirp.dedup_hit, ...). *)
  let net =
    Network.create ~clock:(Kernel.clock kernel)
      ~metrics:(Kernel.metrics kernel) ~trace:(Kernel.trace_ring kernel) ()
  in
  Network.set_fault_plan net
    (Fault.plan ~seed:2005L ~default_profile:(Fault.profile ~drop:0.1 ()) ());
  let ca = Ca.create ~name:"Metrics CA" in
  let acceptor = Negotiate.acceptor ~trusted_cas:[ ca ] () in
  let root_acl =
    Acl.of_entries
      [
        Entry.make ~pattern:"globus:/O=UnivNowhere/*"
          (Rights.of_string_exn "rwlx");
      ]
  in
  let _server =
    ok "metrics server"
      (Server.create ~kernel ~net ~addr:"stats.grid.edu:9094"
         ~owner_uid:dthain.Account.uid ~export:"/home/dthain/export" ~acceptor
         ~root_acl ())
  in
  let cert = Ca.issue ca (Subject.of_string_exn "/O=UnivNowhere/CN=Freddy") in
  (match
     Client.connect net ~addr:"stats.grid.edu:9094"
       ~credentials:[ Credential.Gsi cert ]
   with
  | Error m -> failwith ("metrics client: " ^ m)
  | Ok c ->
    for i = 1 to 8 do
      let path = Printf.sprintf "/f%d" i in
      ignore (Client.put c ~path ~data:(String.make 32 'y'));
      ignore (Client.get c path)
    done;
    (* Delegated exec, so the stats export also carries the delegation
       counter families (auth.delegation.mint/ok/reject.*,
       enforce.chain.*, chirp.delegated_exec, chirp.revocation.apply). *)
    Program.register "dstat" (fun _ -> 0);
    ignore (Client.put c ~path:"/dstat.exe" ~data:(Program.marker "dstat"));
    let mint ~delegatee ~expires =
      Metrics.incr (Metrics.counter (Kernel.metrics kernel) "auth.delegation.mint");
      Delegation.mint ca ~delegator:"globus:/O=UnivNowhere/CN=Freddy"
        ~delegatee ~rights:(Rights.of_string_exn "rxl") ~prefix:"/"
        ~now:(Clock.now (Kernel.clock kernel))
        ~ttl_ns:expires ~hops:2 ()
    in
    let gilda = "globus:/O=UnivNowhere/CN=Gilda" in
    let cert_g = Ca.issue ca (Subject.of_string_exn "/O=UnivNowhere/CN=Gilda") in
    (match
       Client.connect ~src:"gilda" net ~addr:"stats.grid.edu:9094"
         ~credentials:[ Credential.Gsi cert_g ]
     with
    | Error m -> failwith ("metrics delegatee: " ^ m)
    | Ok cg ->
      let chain = [ mint ~delegatee:gilda ~expires:60_000_000_000L ] in
      ignore
        (Client.exec_delegated cg ~chain ~path:"/dstat.exe"
           ~args:[ "dstat.exe" ] ());
      ignore (Client.get_delegated cg ~chain "/f1");
      (* One refusal, so a reject counter family shows up too. *)
      ignore
        (Client.get_delegated cg
           ~chain:[ mint ~delegatee:gilda ~expires:(-1L) ]
           "/f1");
      ignore (Client.revoke c "globus:/O=UnivNowhere/CN=Freddy");
      ignore (Client.get_delegated cg ~chain "/f1")));
  kernel

let metrics ?(trace = false) () =
  let kernel = metrics_workload () in
  say "%s" (metrics_json kernel);
  if trace then say "%s" (trace_json kernel)

let all ?(scale = 0.1) () =
  fig1 ();
  fig2 ();
  fig3 ();
  fig4 ();
  fig5a ();
  fig5b ~scale ();
  fig6 ();
  ablations ()
