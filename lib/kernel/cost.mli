(** The calibrated cost model.

    All durations are simulated nanoseconds.  Direct costs are set once
    to the paper's unmodified Fig. 5(a) bars (1545 MHz Athlon XP 1800,
    Linux 2.4.20); interposition costs are the architectural terms of
    Fig. 4 — context switches, peek/poke words, and the extra copy
    through the I/O channel.  Application-level overheads are never set
    directly: they emerge from these constants and each workload's
    syscall mix. *)

type t = {
  context_switch : int64;
      (** One context switch.  A trapped syscall pays at least six
          (Fig. 4): two to stop at entry, two around the nullified call,
          two to resume after exit. *)
  peek_poke_word : int64;
      (** One [ptrace] PEEK or POKE: registers and small data move one
          word at a time. *)
  copy_byte_ns : float;
      (** Per-byte cost of the extra copy through the I/O channel
          (supervisor-side memcpy). *)
  supervisor_decode : int64;
      (** Fixed supervisor work per trapped call: decode, table lookups. *)
  acl_check_base : int64;
      (** Base cost of one ACL evaluation (read + parse the ACL file is
          charged separately as real syscalls by the supervisor). *)
  acl_check_entry : int64;  (** Additional cost per ACL entry scanned. *)
  syscall_base : int64;
      (** Kernel entry/exit cost common to every direct syscall. *)
  path_component : int64;  (** Per-component path resolution cost. *)
  name_cache_ns : int64;
      (** A supervisor name-cache hit: the per-component price of the
          ancestor-symlink canonicalization walk (an in-memory hash
          probe, like a dcache hit — far cheaper than a kernel path
          resolution). *)
  gen_check_ns : int64;
      (** One generation revalidation: a hash probe plus an integer
          compare against the VFS mutation generation.  Charged on the
          warm path of the supervisor's name/ACL/decision caches so
          Fig. 6-style ablations stay honest — cheap, but not free. *)
  getpid_ns : int64;
  stat_ns : int64;  (** stat beyond [syscall_base] + path terms. *)
  open_ns : int64;
  close_ns : int64;
  read_base_ns : int64;
  write_base_ns : int64;
  io_byte_ns : float;  (** Per-byte cost of a direct read/write. *)
  spawn_ns : int64;
  misc_ns : int64;  (** Any other call beyond [syscall_base]. *)
  wal_append_ns : int64;
      (** Per-record cost of formatting + checksumming a WAL append
          (the byte copy is charged separately via {!copy_bytes}). *)
  wal_sync_ns : int64;
      (** One stable-storage sync (fsync of the log tail) — the price
          of acknowledging a mutation durably.  Dominates the WAL's
          contribution to write latency, as on a real disk. *)
  wal_replay_ns : int64;
      (** Per-record parse + checksum verification during recovery
          (re-executing the logged operation is charged by the
          operation itself). *)
  checkpoint_entry_ns : int64;
      (** Per-entry cost of writing or loading a checkpoint image
          (besides the snapshot walk's own delegated syscalls). *)
  digest_dir_ns : int64;
      (** Per-directory cost of computing a fresh anti-entropy digest
          (hashing names, kinds and ACL text; file-content bytes are
          charged via {!copy_bytes}).  A generation-validated memo hit
          costs {!t.gen_check_ns} instead. *)
  chain_hop_ns : int64;
      (** Per-hop cost of cold delegation-chain validation: one keyed
          digest recompute plus the structural checks for a single hop.
          A memoized chain verdict revalidated against the revocation
          generation costs {!t.gen_check_ns} instead. *)
  bytecode_check_ns : int64;
      (** One compiled-policy bytecode evaluation at syscall entry: a
          generation compare, one or two perfect-hash probes and a
          bounded automaton step — no interpreter, no cache walk.  Far
          below {!t.gen_check_ns} because the program is immutable and
          collision-free once installed. *)
  bytecode_compile_ns : int64;
      (** One policy compilation: walking the reachable ACL set,
          building the perfect-hash tables and running the seeded
          verifier.  Charged off the hot path (on the first interpreted
          check after an invalidation), never per syscall. *)
}

val default : t
(** The calibration used for every experiment in EXPERIMENTS.md. *)

val direct : t -> Syscall.request -> Syscall.result -> int64
(** Cost of executing a request directly (no tracer), given its result
    (payload sizes matter). *)

val copy_bytes : t -> int -> int64
(** Cost of copying [n] bytes through the I/O channel. *)

val peek_poke : t -> words:int -> int64
(** Cost of moving [words] machine words via PEEK/POKE. *)
