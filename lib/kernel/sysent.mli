(** Table-driven syscall dispatch, modeled on DragonFly BSD's
    [sysent]/[sysmsg] pair: a per-call table entry carrying the
    handler, its register arity, and an enforcement pre-check hook; and
    a per-invocation message that either completes synchronously or
    parks with a completion token and is completed by a later wakeup.

    Generic in the handler context ['ctx] (the kernel passes a PCB) and
    outcome ['outcome], so the table can be built per kernel instance
    and exercised in isolation by tests. *)

type ('ctx, 'outcome) entry = {
  se_number : int;  (** Stable syscall number; the table index. *)
  se_name : string;
  se_narg : int;  (** Argument registers at the trap boundary. *)
  se_enforce :
    ('ctx -> Syscall.request -> (unit, Idbox_vfs.Errno.t) result) option;
      (** Pre-check run on the entry path before the handler; [None]
          for calls that never trap. *)
  se_call : 'ctx -> Syscall.request -> 'outcome;
}

val entry :
  number:int ->
  name:string ->
  narg:int ->
  ?enforce:('ctx -> Syscall.request -> (unit, Idbox_vfs.Errno.t) result) ->
  ('ctx -> Syscall.request -> 'outcome) ->
  ('ctx, 'outcome) entry

val table :
  count:int -> (int -> ('ctx, 'outcome) entry) -> ('ctx, 'outcome) entry array
(** [table ~count make] builds [[| make 0; ...; make (count-1) |]],
    raising [Invalid_argument] if any entry's number disagrees with its
    slot — a misnumbered sysent is a kernel bug. *)

val dispatch :
  ('ctx, 'outcome) entry array -> Syscall.request -> ('ctx, 'outcome) entry
(** The entry for a request, by its {!Syscall.number}. *)

(** {1 Sysmsg} *)

type 'outcome state =
  | Pending
  | Completed of 'outcome

type 'outcome sysmsg = {
  sm_number : int;
  sm_name : string;
  sm_pid : int;
  sm_submitted_ns : int64;
  mutable sm_state : 'outcome state;
}

val msg : pid:int -> at:int64 -> ('ctx, _) entry -> 'outcome sysmsg
(** A fresh pending message for one invocation of [entry]. *)

val complete : 'outcome sysmsg -> 'outcome -> bool
(** Complete exactly once: [true] when this call completed the message,
    [false] when it had already completed (a late wakeup). *)

val is_pending : _ sysmsg -> bool
val outcome : 'outcome sysmsg -> 'outcome option
