type t = {
  context_switch : int64;
  peek_poke_word : int64;
  copy_byte_ns : float;
  supervisor_decode : int64;
  acl_check_base : int64;
  acl_check_entry : int64;
  syscall_base : int64;
  path_component : int64;
  name_cache_ns : int64;
  gen_check_ns : int64;
  getpid_ns : int64;
  stat_ns : int64;
  open_ns : int64;
  close_ns : int64;
  read_base_ns : int64;
  write_base_ns : int64;
  io_byte_ns : float;
  spawn_ns : int64;
  misc_ns : int64;
  wal_append_ns : int64;
  wal_sync_ns : int64;
  wal_replay_ns : int64;
  checkpoint_entry_ns : int64;
  digest_dir_ns : int64;
  chain_hop_ns : int64;
  bytecode_check_ns : int64;
  bytecode_compile_ns : int64;
}

let default =
  {
    context_switch = 900L;
    peek_poke_word = 150L;
    copy_byte_ns = 0.35;
    supervisor_decode = 400L;
    acl_check_base = 300L;
    acl_check_entry = 60L;
    syscall_base = 250L;
    path_component = 350L;
    name_cache_ns = 80L;
    gen_check_ns = 40L;
    getpid_ns = 150L;
    stat_ns = 1500L;
    open_ns = 1600L;
    close_ns = 500L;
    read_base_ns = 600L;
    write_base_ns = 700L;
    io_byte_ns = 0.30;
    spawn_ns = 250_000L;
    misc_ns = 800L;
    wal_append_ns = 1_200L;
    wal_sync_ns = 150_000L;
    wal_replay_ns = 900L;
    checkpoint_entry_ns = 2_500L;
    digest_dir_ns = 1_800L;
    chain_hop_ns = 2_000L;
    bytecode_check_ns = 12L;
    bytecode_compile_ns = 40_000L;
  }

let ns_of_float f = Int64.of_float (Float.round f)

let copy_bytes t n = ns_of_float (float_of_int n *. t.copy_byte_ns)

let peek_poke t ~words = Int64.mul (Int64.of_int words) t.peek_poke_word

let path_cost t path =
  Int64.mul
    (Int64.of_int (List.length (Idbox_vfs.Path.components path)))
    t.path_component

let io_cost t base bytes =
  Int64.add base (ns_of_float (float_of_int bytes *. t.io_byte_ns))

let direct t req result =
  let bytes = Syscall.payload_bytes req result in
  let body =
    match req with
    | Syscall.Getpid | Syscall.Getppid | Syscall.Getuid | Syscall.Get_user_name ->
      t.getpid_ns
    | Syscall.Getcwd | Syscall.Getenv _ | Syscall.Setenv _ -> t.getpid_ns
    | Syscall.Chdir p -> Int64.add t.misc_ns (path_cost t p)
    | Syscall.Open { path; _ } -> Int64.add t.open_ns (path_cost t path)
    | Syscall.Close _ -> t.close_ns
    | Syscall.Read _ | Syscall.Pread _ -> io_cost t t.read_base_ns bytes
    | Syscall.Write _ | Syscall.Pwrite _ -> io_cost t t.write_base_ns bytes
    | Syscall.Lseek _ -> t.getpid_ns
    | Syscall.Stat p | Syscall.Lstat p -> Int64.add t.stat_ns (path_cost t p)
    | Syscall.Fstat _ -> t.stat_ns
    | Syscall.Mkdir { path; _ } | Syscall.Rmdir path | Syscall.Unlink path ->
      Int64.add t.misc_ns (path_cost t path)
    | Syscall.Link { path; _ } | Syscall.Symlink { path; _ } ->
      Int64.add t.misc_ns (path_cost t path)
    | Syscall.Readlink p | Syscall.Readdir p | Syscall.Getacl p ->
      Int64.add t.misc_ns (path_cost t p)
    | Syscall.Rename { src; dst } ->
      Int64.add t.misc_ns (Int64.add (path_cost t src) (path_cost t dst))
    | Syscall.Chmod { path; _ } | Syscall.Chown { path; _ }
    | Syscall.Truncate { path; _ } | Syscall.Setacl { path; _ } ->
      Int64.add t.misc_ns (path_cost t path)
    | Syscall.Pipe -> t.misc_ns
    | Syscall.Spawn _ -> t.spawn_ns
    | Syscall.Waitpid _ | Syscall.Exit _ | Syscall.Kill _ -> t.misc_ns
    | Syscall.Compute ns -> ns
  in
  match req with
  | Syscall.Compute _ -> body (* pure user time: no kernel entry cost *)
  | _ -> Int64.add t.syscall_base body
