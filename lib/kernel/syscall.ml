type whence =
  | Seek_set
  | Seek_cur
  | Seek_end

type request =
  | Getpid
  | Getppid
  | Getuid
  | Get_user_name
  | Getcwd
  | Chdir of string
  | Open of { path : string; flags : Idbox_vfs.Fs.open_flags; mode : int }
  | Close of int
  | Read of { fd : int; len : int }
  | Write of { fd : int; data : string }
  | Pread of { fd : int; off : int; len : int }
  | Pwrite of { fd : int; off : int; data : string }
  | Lseek of { fd : int; off : int; whence : whence }
  | Stat of string
  | Lstat of string
  | Fstat of int
  | Mkdir of { path : string; mode : int }
  | Rmdir of string
  | Unlink of string
  | Link of { target : string; path : string }
  | Symlink of { target : string; path : string }
  | Readlink of string
  | Rename of { src : string; dst : string }
  | Readdir of string
  | Chmod of { path : string; mode : int }
  | Chown of { path : string; owner : int }
  | Truncate of { path : string; len : int }
  | Pipe
  | Spawn of { path : string; args : string list }
  | Waitpid of int
  | Exit of int
  | Kill of { pid : int; signal : int }
  | Getenv of string
  | Setenv of { name : string; value : string }
  | Getacl of string
  | Setacl of { path : string; entry : string }
  | Compute of int64

type value =
  | Unit
  | Int of int
  | Str of string
  | Data of string
  | Stat_v of Idbox_vfs.Fs.stat
  | Names of string list
  | Wait_v of { pid : int; status : int }
  | Fd_pair of { rd : int; wr : int }

type result = (value, Idbox_vfs.Errno.t) Stdlib.result

let name = function
  | Getpid -> "getpid"
  | Getppid -> "getppid"
  | Getuid -> "getuid"
  | Get_user_name -> "get_user_name"
  | Getcwd -> "getcwd"
  | Chdir _ -> "chdir"
  | Open _ -> "open"
  | Close _ -> "close"
  | Read _ -> "read"
  | Write _ -> "write"
  | Pread _ -> "pread"
  | Pwrite _ -> "pwrite"
  | Lseek _ -> "lseek"
  | Stat _ -> "stat"
  | Lstat _ -> "lstat"
  | Fstat _ -> "fstat"
  | Mkdir _ -> "mkdir"
  | Rmdir _ -> "rmdir"
  | Unlink _ -> "unlink"
  | Link _ -> "link"
  | Symlink _ -> "symlink"
  | Readlink _ -> "readlink"
  | Rename _ -> "rename"
  | Readdir _ -> "readdir"
  | Chmod _ -> "chmod"
  | Chown _ -> "chown"
  | Truncate _ -> "truncate"
  | Pipe -> "pipe"
  | Spawn _ -> "spawn"
  | Waitpid _ -> "waitpid"
  | Exit _ -> "exit"
  | Kill _ -> "kill"
  | Getenv _ -> "getenv"
  | Setenv _ -> "setenv"
  | Getacl _ -> "getacl"
  | Setacl _ -> "setacl"
  | Compute _ -> "compute"

(* Stable syscall numbers, sysent-style: the dispatch table is indexed
   by these, so the numbering is part of the kernel ABI — append only,
   never renumber. *)
let number = function
  | Getpid -> 0
  | Getppid -> 1
  | Getuid -> 2
  | Get_user_name -> 3
  | Getcwd -> 4
  | Chdir _ -> 5
  | Open _ -> 6
  | Close _ -> 7
  | Read _ -> 8
  | Write _ -> 9
  | Pread _ -> 10
  | Pwrite _ -> 11
  | Lseek _ -> 12
  | Stat _ -> 13
  | Lstat _ -> 14
  | Fstat _ -> 15
  | Mkdir _ -> 16
  | Rmdir _ -> 17
  | Unlink _ -> 18
  | Link _ -> 19
  | Symlink _ -> 20
  | Readlink _ -> 21
  | Rename _ -> 22
  | Readdir _ -> 23
  | Chmod _ -> 24
  | Chown _ -> 25
  | Truncate _ -> 26
  | Pipe -> 27
  | Spawn _ -> 28
  | Waitpid _ -> 29
  | Exit _ -> 30
  | Kill _ -> 31
  | Getenv _ -> 32
  | Setenv _ -> 33
  | Getacl _ -> 34
  | Setacl _ -> 35
  | Compute _ -> 36

let count = 37

(* One representative value per constructor, in {!number} order: what a
   table builder iterates to stamp out one sysent entry per call. *)
let prototypes =
  let no_flags =
    { Idbox_vfs.Fs.rd = false; wr = false; creat = false; excl = false;
      trunc = false; append = false }
  in
  [
    Getpid;
    Getppid;
    Getuid;
    Get_user_name;
    Getcwd;
    Chdir "/";
    Open { path = "/"; flags = no_flags; mode = 0 };
    Close 0;
    Read { fd = 0; len = 0 };
    Write { fd = 0; data = "" };
    Pread { fd = 0; off = 0; len = 0 };
    Pwrite { fd = 0; off = 0; data = "" };
    Lseek { fd = 0; off = 0; whence = Seek_set };
    Stat "/";
    Lstat "/";
    Fstat 0;
    Mkdir { path = "/"; mode = 0 };
    Rmdir "/";
    Unlink "/";
    Link { target = "/"; path = "/" };
    Symlink { target = "/"; path = "/" };
    Readlink "/";
    Rename { src = "/"; dst = "/" };
    Readdir "/";
    Chmod { path = "/"; mode = 0 };
    Chown { path = "/"; owner = 0 };
    Truncate { path = "/"; len = 0 };
    Pipe;
    Spawn { path = "/"; args = [] };
    Waitpid (-1);
    Exit 0;
    Kill { pid = 0; signal = 0 };
    Getenv "";
    Setenv { name = ""; value = "" };
    Getacl "/";
    Setacl { path = "/"; entry = "" };
    Compute 0L;
  ]

(* The sysent arity: how many argument registers the call uses at the
   trap boundary (DragonFly's [sy_narg]).  Static per call — unlike
   {!argument_words}, which counts the words a tracer must PEEK and so
   depends on path lengths. *)
let register_args = function
  | Getpid | Getppid | Getuid | Get_user_name | Getcwd | Pipe -> 0
  | Chdir _ | Close _ | Stat _ | Lstat _ | Fstat _ | Rmdir _ | Unlink _
  | Readlink _ | Readdir _ | Waitpid _ | Exit _ | Getenv _ | Getacl _ -> 1
  | Mkdir _ | Chmod _ | Chown _ | Truncate _ | Link _ | Symlink _ | Rename _
  | Kill _ | Setenv _ | Setacl _ | Spawn _ -> 2
  | Open _ | Read _ | Write _ | Lseek _ -> 3
  | Pread _ | Pwrite _ -> 4
  | Compute _ -> 1

let is_metadata = function
  | Stat _ | Lstat _ | Fstat _ | Open _ | Close _ | Mkdir _ | Rmdir _ | Unlink _
  | Link _ | Symlink _ | Readlink _ | Rename _ | Readdir _ | Chmod _ | Chown _
  | Getacl _ | Setacl _ | Chdir _ | Getcwd -> true
  | Getpid | Getppid | Getuid | Get_user_name | Read _ | Write _ | Pread _
  | Pwrite _ | Lseek _ | Truncate _ | Pipe | Spawn _ | Waitpid _ | Exit _
  | Kill _ | Getenv _ | Setenv _ | Compute _ -> false

let payload_bytes req result =
  match req with
  | Write { data; _ } | Pwrite { data; _ } -> String.length data
  | Read _ | Pread _ ->
    (match result with Ok (Data d) -> String.length d | Ok _ | Error _ -> 0)
  | Getpid | Getppid | Getuid | Get_user_name | Getcwd | Chdir _ | Open _
  | Close _ | Lseek _ | Stat _ | Lstat _ | Fstat _ | Mkdir _ | Rmdir _
  | Unlink _ | Link _ | Symlink _ | Readlink _ | Rename _ | Readdir _
  | Chmod _ | Chown _ | Truncate _ | Pipe | Spawn _ | Waitpid _ | Exit _
  | Kill _ | Getenv _ | Setenv _ | Getacl _ | Setacl _ | Compute _ -> 0

let word_size = 8

let words_of_string s = (String.length s + word_size - 1) / word_size

let argument_words = function
  | Getpid | Getppid | Getuid | Get_user_name | Getcwd | Pipe -> 0
  | Close _ | Waitpid _ | Exit _ -> 1
  | Read _ | Lseek _ | Kill _ -> 2
  | Pread _ -> 3
  | Chdir p | Stat p | Lstat p | Rmdir p | Unlink p | Readlink p | Readdir p
  | Getacl p -> 1 + words_of_string p
  | Open { path; _ } -> 3 + words_of_string path
  | Mkdir { path; _ } | Chmod { path; _ } | Chown { path; _ }
  | Truncate { path; _ } -> 2 + words_of_string path
  (* Bulk payloads never travel by PEEK: the tracer reads the register
     triple (fd, buffer pointer, length) and moves the data through the
     I/O channel or an explicit small-transfer PEEK loop, both charged
     by the supervisor that performs them. *)
  | Write _ -> 3
  | Pwrite _ -> 4
  | Link { target; path } | Symlink { target; path } ->
    2 + words_of_string target + words_of_string path
  | Rename { src; dst } -> 2 + words_of_string src + words_of_string dst
  | Spawn { path; args } ->
    1 + words_of_string path
    + List.fold_left (fun acc a -> acc + 1 + words_of_string a) 0 args
  | Fstat _ -> 1
  | Getenv n -> 1 + words_of_string n
  | Setenv { name = n; value } -> 2 + words_of_string n + words_of_string value
  | Setacl { path; entry } -> 2 + words_of_string path + words_of_string entry
  | Compute _ -> 0

let result_words = function
  | Error _ -> 1
  | Ok Unit -> 1
  | Ok (Int _) -> 1
  | Ok (Str s) -> 1 + words_of_string s
  | Ok (Data _) ->
    (* Bulk payloads travel through the I/O channel, not peek/poke; the
       tracer pokes only the rewritten registers. *)
    2
  | Ok (Stat_v _) -> 16
  | Ok (Names names) ->
    List.fold_left (fun acc n -> acc + 1 + words_of_string n) 1 names
  | Ok (Wait_v _) -> 2
  | Ok (Fd_pair _) -> 2

let pp_request ppf req = Format.pp_print_string ppf (name req)

let pp_value ppf = function
  | Unit -> Format.pp_print_string ppf "()"
  | Int n -> Format.pp_print_int ppf n
  | Str s -> Format.fprintf ppf "%S" s
  | Data d -> Format.fprintf ppf "<%d bytes>" (String.length d)
  | Stat_v st -> Format.fprintf ppf "<stat ino=%d>" st.Idbox_vfs.Fs.st_ino
  | Names names -> Format.fprintf ppf "[%s]" (String.concat "; " names)
  | Wait_v { pid; status } -> Format.fprintf ppf "(pid %d, status %d)" pid status
  | Fd_pair { rd; wr } -> Format.fprintf ppf "(rd %d, wr %d)" rd wr

let pp_result ppf = function
  | Ok v -> pp_value ppf v
  | Error e -> Idbox_vfs.Errno.pp ppf e
