(* Compiled policy bytecode: the in-kernel decision program.

   A program is a frozen snapshot of the box's reachable ACL universe,
   compiled off the hot path and evaluated at syscall entry without
   touching the policy interpreter.  The layout is three perfect-hash
   tables (directory -> ACL id, object path -> governing ACL id, and
   (ACL id, principal) -> rights mask for literal entries) plus a flat
   instruction stream holding one wildcard block per ACL.  Perfect
   means collision-free by construction: every probe is one hash, one
   index, one string compare — never a chain walk.

   The VM is deliberately tiny.  Two opcodes:

     RET              end of block
     WILD pat mask    if the pattern (pool index [pat]) globs the
                      principal, OR [mask] into the accumulator

   Every loop in evaluation is bounded: table probes are O(1), block
   walks stop at RET (whose presence within [max_block] instructions
   the verifier proves), and glob matching runs on explicit fuel.
   Anything out of bounds, out of fuel or simply absent from the
   tables evaluates to [Unknown] — the caller falls back to the full
   interpreter.  The program can fail closed to the interpreter; it
   can never fail open. *)

type verdict = Allow | Deny | Unknown

type t = {
  p_gen : int;  (* VFS global generation the snapshot was taken at *)
  p_pool : string array;  (* interned strings: paths, principals, patterns *)
  p_code : int array;  (* flat stream, [instr_width] ints per instruction *)
  p_acl_off : int array;  (* ACL id -> offset of its wildcard block *)
  (* directory table: lexical dir path -> ACL id, -1 = known, not compiled *)
  p_dir_seed : int;
  p_dir_key : int array;  (* pool index of the key, -1 = empty slot *)
  p_dir_val : int array;
  (* path table: lexical object path -> governing ACL id (or -1) *)
  p_path_seed : int;
  p_path_key : int array;
  p_path_val : int array;
  (* exact table: (ACL id, principal) -> union mask of literal entries *)
  p_ex_seed : int;
  p_ex_key : int array;  (* pool index of the principal, -1 = empty slot *)
  p_ex_acl : int array;
  p_ex_mask : int array;
}

let generation p = p.p_gen

(* --- opcodes --------------------------------------------------------- *)

let op_ret = 0
let op_wild = 1
let instr_width = 3

(* --- bounds ----------------------------------------------------------

   The verifier's size budget.  Small enough that a program is always a
   bounded, auditable object; large enough for any workload this
   simulation runs.  A universe that does not fit is simply not
   compiled — the interpreter serves it. *)

let max_pool = 65_536
let max_string = 512
let max_pattern = 256
let max_code = 65_536 * instr_width
let max_table = 262_144
let max_block = 1_024  (* instructions per ACL wildcard block *)

(* Fuel for one glob match.  A backtracking glob visits at most
   (pattern length + 1) * (subject length + 1) states; with patterns
   capped at [max_pattern] by the verifier, this covers subjects up to
   ~1000 chars.  A longer principal burns the fuel and evaluates to
   [Unknown] — fail closed, never open. *)
let glob_fuel = (max_pattern + 1) * 1_024

(* --- hashing ---------------------------------------------------------

   FNV-1a, seeded, clamped positive.  The seed is what the compiler
   retries until the key set is collision-free, making the tables
   "perfect" without any probe sequence at evaluation time. *)

let hash ~seed s =
  let h = ref (0x811c9dc5 lxor seed) in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0x3FFFFFFF)
    s;
  !h

let dir_slot ~seed ~len s = hash ~seed s mod len
let path_slot = dir_slot

(* The exact table keys a pair: mix the ACL id into the principal's
   hash with a distinct odd multiplier. *)
let ex_slot ~seed ~len ~acl s =
  ((hash ~seed s + (acl * 0x9E3779B1)) land 0x3FFFFFFF) mod len

(* --- probes ----------------------------------------------------------

   Each returns the stored value, or [None] when the key is absent.
   One hash, one slot read, one string compare. *)

let probe_str pool ~seed key_arr val_arr s =
  let len = Array.length key_arr in
  if len = 0 then None
  else
    let i = dir_slot ~seed ~len s in
    let k = key_arr.(i) in
    if k >= 0 && String.equal pool.(k) s then Some val_arr.(i) else None

let probe_exact p ~acl principal =
  let len = Array.length p.p_ex_key in
  if len = 0 then None
  else
    let i = ex_slot ~seed:p.p_ex_seed ~len ~acl principal in
    let k = p.p_ex_key.(i) in
    if k >= 0 && p.p_ex_acl.(i) = acl && String.equal p.p_pool.(k) principal
    then Some p.p_ex_mask.(i)
    else None

(* --- the bounded glob ------------------------------------------------

   Standard two-pointer glob with a single backtrack point ('*' resumes
   one subject character later), under an explicit fuel counter.  '?'
   matches any one character; '*' any run, including empty. *)

type glob_result = Matched | Unmatched | Out_of_fuel

let glob ~fuel pat s =
  let pl = String.length pat and sl = String.length s in
  let fuel = ref fuel in
  let p = ref 0 and i = ref 0 in
  let star_p = ref (-1) and star_i = ref 0 in
  let res = ref None in
  while !res = None do
    decr fuel;
    if !fuel < 0 then res := Some Out_of_fuel
    else if !i < sl then begin
      if !p < pl && (pat.[!p] = '?' || pat.[!p] = s.[!i]) then begin
        incr p;
        incr i
      end
      else if !p < pl && pat.[!p] = '*' then begin
        star_p := !p;
        star_i := !i;
        incr p
      end
      else if !star_p >= 0 then begin
        (* Backtrack: the last '*' absorbs one more subject char. *)
        p := !star_p + 1;
        incr star_i;
        i := !star_i
      end
      else res := Some Unmatched
    end
    else begin
      (* Subject consumed: only trailing stars may remain. *)
      while !p < pl && pat.[!p] = '*' do
        incr p
      done;
      res := Some (if !p = pl then Matched else Unmatched)
    end
  done;
  Option.get !res

(* --- evaluation ------------------------------------------------------ *)

(* The rights mask a compiled ACL grants [principal]: the exact-table
   entry (union of all literal entries that name the principal) OR'd
   with every matching wildcard entry in the ACL's code block.  [None]
   when a glob ran out of fuel. *)
let acl_mask p ~acl principal =
  let base = match probe_exact p ~acl principal with Some m -> m | None -> 0 in
  let mask = ref base in
  let pc = ref p.p_acl_off.(acl) in
  let res = ref None in
  while !res = None do
    match p.p_code.(!pc) with
    | op when op = op_ret -> res := Some (Some !mask)
    | op when op = op_wild ->
      let pat = p.p_pool.(p.p_code.(!pc + 1)) in
      let m = p.p_code.(!pc + 2) in
      (match glob ~fuel:glob_fuel pat principal with
       | Matched ->
         mask := !mask lor m;
         pc := !pc + instr_width
       | Unmatched -> pc := !pc + instr_width
       | Out_of_fuel -> res := Some None)
    | _ -> res := Some None
  done;
  Option.get !res

let decide p ~acl ~principal ~right_bit =
  if acl < 0 then Unknown
  else
    match acl_mask p ~acl principal with
    | None -> Unknown
    | Some m -> if m land (1 lsl right_bit) <> 0 then Allow else Deny

(* A path the program can answer for: absolute, already normalized, no
   "." / ".." / empty components.  Anything else must go through the
   interpreter's canonicalization (lexical ".." collapse diverges from
   resolution through symlinked ancestors). *)
let plain_abs path =
  let n = String.length path in
  if n = 0 || path.[0] <> '/' then false
  else if n = 1 then true
  else begin
    let ok = ref (path.[n - 1] <> '/') in
    let comp_start = ref 1 in
    let check_comp finish =
      let len = finish - !comp_start in
      if len = 0 then ok := false
      else if len = 1 && path.[!comp_start] = '.' then ok := false
      else if len = 2 && path.[!comp_start] = '.' && path.[!comp_start + 1] = '.'
      then ok := false
    in
    for i = 1 to n - 1 do
      if path.[i] = '/' then begin
        check_comp i;
        comp_start := i + 1
      end
    done;
    if !ok then check_comp n;
    !ok
  end

(* Lexical dirname of a plain absolute path. *)
let parent_of path =
  match String.rindex_opt path '/' with
  | None | Some 0 -> "/"
  | Some i -> String.sub path 0 i

let eval_in_dir p ~principal ~dir ~right_bit =
  if not (plain_abs dir) then Unknown
  else
    match probe_str p.p_pool ~seed:p.p_dir_seed p.p_dir_key p.p_dir_val dir with
    | Some acl -> decide p ~acl ~principal ~right_bit
    | None -> Unknown

let eval_object p ~principal ~path ~right_bit =
  if not (plain_abs path) then Unknown
  else
    match
      probe_str p.p_pool ~seed:p.p_path_seed p.p_path_key p.p_path_val path
    with
    | Some acl -> decide p ~acl ~principal ~right_bit
    | None ->
      (* Unknown object: if its lexical parent is a compiled directory,
         the governing ACL is that directory's — the object does not
         exist at this generation (every existing object is in the path
         table), so the verdict is a pure function of the parent's ACL. *)
      (match
         probe_str p.p_pool ~seed:p.p_dir_seed p.p_dir_key p.p_dir_val
           (parent_of path)
       with
       | Some acl -> decide p ~acl ~principal ~right_bit
       | None -> Unknown)

(* --- structural verification ----------------------------------------

   Every accepted program satisfies: all sizes within budget, all pool
   references in range, every ACL block RET-terminated within
   [max_block] instructions with only known opcodes, every table slot
   either empty or placed exactly where its key hashes — which both
   proves the perfect-hash property and pins probe termination to a
   single slot read.  Together with the fuel-bounded glob this is the
   termination proof: no loop in {!eval_object} / {!eval_in_dir} can
   exceed a verified static bound. *)

let check_program p =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e in
  let npool = Array.length p.p_pool in
  let nacl = Array.length p.p_acl_off in
  let* () =
    if npool > max_pool then err "pool too large: %d" npool else Ok ()
  in
  let* () =
    if Array.length p.p_code > max_code then
      err "code too large: %d" (Array.length p.p_code)
    else Ok ()
  in
  let* () =
    let bad = ref None in
    Array.iteri
      (fun i s ->
        if !bad = None && String.length s > max_string then bad := Some i)
      p.p_pool;
    match !bad with
    | Some i -> err "pool string %d exceeds %d bytes" i max_string
    | None -> Ok ()
  in
  (* Each ACL's block: in range, known opcodes, RET within max_block,
     wildcard operands in range and short enough for the fuel budget. *)
  let rec check_block acl pc steps =
    if steps > max_block then err "acl %d: no RET within %d instrs" acl max_block
    else if pc < 0 || pc >= Array.length p.p_code then
      err "acl %d: pc out of range" acl
    else
      match p.p_code.(pc) with
      | op when op = op_ret -> Ok ()
      | op when op = op_wild ->
        if pc + 2 >= Array.length p.p_code then err "acl %d: truncated WILD" acl
        else
          let pat = p.p_code.(pc + 1) in
          let mask = p.p_code.(pc + 2) in
          if pat < 0 || pat >= npool then err "acl %d: bad pattern index" acl
          else if String.length p.p_pool.(pat) > max_pattern then
            err "acl %d: pattern exceeds %d chars" acl max_pattern
          else if mask < 0 then err "acl %d: negative mask" acl
          else check_block acl (pc + instr_width) (steps + 1)
      | op -> err "acl %d: unknown opcode %d" acl op
  in
  let* () =
    let rec go acl =
      if acl >= nacl then Ok ()
      else
        let off = p.p_acl_off.(acl) in
        if off < 0 || off >= Array.length p.p_code then
          err "acl %d: offset out of range" acl
        else
          let* () = check_block acl off 0 in
          go (acl + 1)
    in
    go 0
  in
  (* A string table: lengths agree, within budget, slots empty or
     perfectly placed, values within the ACL range. *)
  let check_table name ~seed key_arr val_arr =
    let len = Array.length key_arr in
    if len <> Array.length val_arr then err "%s: length mismatch" name
    else if len > max_table then err "%s: too large: %d" name len
    else begin
      let bad = ref None in
      Array.iteri
        (fun i k ->
          if !bad = None then
            if k = -1 then begin
              if val_arr.(i) <> -1 then
                bad := Some (Printf.sprintf "%s: slot %d: value without key" name i)
            end
            else if k < 0 || k >= npool then
              bad := Some (Printf.sprintf "%s: slot %d: bad pool index" name i)
            else if dir_slot ~seed ~len p.p_pool.(k) <> i then
              bad := Some (Printf.sprintf "%s: slot %d: misplaced key" name i)
            else if val_arr.(i) < -1 || val_arr.(i) >= nacl then
              bad := Some (Printf.sprintf "%s: slot %d: bad acl id" name i))
        key_arr;
      match !bad with Some m -> Error m | None -> Ok ()
    end
  in
  let* () = check_table "dir" ~seed:p.p_dir_seed p.p_dir_key p.p_dir_val in
  let* () = check_table "path" ~seed:p.p_path_seed p.p_path_key p.p_path_val in
  (* The exact table additionally carries the ACL id in the key. *)
  let* () =
    let len = Array.length p.p_ex_key in
    if len <> Array.length p.p_ex_acl || len <> Array.length p.p_ex_mask then
      err "exact: length mismatch"
    else if len > max_table then err "exact: too large: %d" len
    else begin
      let bad = ref None in
      Array.iteri
        (fun i k ->
          if !bad = None then
            if k = -1 then ()
            else if k < 0 || k >= npool then
              bad := Some (Printf.sprintf "exact: slot %d: bad pool index" i)
            else if p.p_ex_acl.(i) < 0 || p.p_ex_acl.(i) >= nacl then
              bad := Some (Printf.sprintf "exact: slot %d: bad acl id" i)
            else if
              ex_slot ~seed:p.p_ex_seed ~len ~acl:p.p_ex_acl.(i) p.p_pool.(k)
              <> i
            then bad := Some (Printf.sprintf "exact: slot %d: misplaced key" i)
            else if p.p_ex_mask.(i) < 0 then
              bad := Some (Printf.sprintf "exact: slot %d: negative mask" i))
        p.p_ex_key;
      match !bad with Some m -> Error m | None -> Ok ()
    end
  in
  Ok ()

(* --- introspection --------------------------------------------------- *)

let size p =
  Array.length p.p_code
  + Array.length p.p_dir_key
  + Array.length p.p_path_key
  + Array.length p.p_ex_key

let stats p =
  let live a = Array.fold_left (fun n k -> if k >= 0 then n + 1 else n) 0 a in
  Printf.sprintf
    "gen=%d pool=%d acls=%d code=%d dirs=%d/%d paths=%d/%d exact=%d/%d"
    p.p_gen (Array.length p.p_pool) (Array.length p.p_acl_off)
    (Array.length p.p_code / instr_width)
    (live p.p_dir_key) (Array.length p.p_dir_key)
    (live p.p_path_key) (Array.length p.p_path_key)
    (live p.p_ex_key) (Array.length p.p_ex_key)
