(** The simulated system call interface: the boundary on which identity
    boxing operates.

    A process performs a {!request}; the kernel (possibly after giving a
    tracer the chance to rewrite it — the heart of interposition) returns
    a {!result}.  The variant is deliberately close to the Unix interface
    Parrot traps: identity boxing must confront the whole surface, not a
    convenient subset (Garfinkel pitfall #3). *)

type whence =
  | Seek_set
  | Seek_cur
  | Seek_end

type request =
  | Getpid
  | Getppid
  | Getuid
  | Get_user_name
      (** The paper's new call: the high-level identity of the caller. *)
  | Getcwd
  | Chdir of string
  | Open of { path : string; flags : Idbox_vfs.Fs.open_flags; mode : int }
  | Close of int
  | Read of { fd : int; len : int }
  | Write of { fd : int; data : string }
  | Pread of { fd : int; off : int; len : int }
  | Pwrite of { fd : int; off : int; data : string }
  | Lseek of { fd : int; off : int; whence : whence }
  | Stat of string
  | Lstat of string
  | Fstat of int
  | Mkdir of { path : string; mode : int }
  | Rmdir of string
  | Unlink of string
  | Link of { target : string; path : string }
  | Symlink of { target : string; path : string }
  | Readlink of string
  | Rename of { src : string; dst : string }
  | Readdir of string
  | Chmod of { path : string; mode : int }
  | Chown of { path : string; owner : int }
  | Truncate of { path : string; len : int }
  | Pipe
      (** Create a pipe; returns a read fd and a write fd.  Children
          inherit open descriptors, so pipes connect process trees as on
          Unix; reads on an empty pipe with live writers block. *)
  | Spawn of { path : string; args : string list }
      (** Create a child process running the executable at [path]
          (spawn = fork+exec; continuations cannot be duplicated, and no
          experiment in the paper needs bare [fork]). *)
  | Waitpid of int  (** [-1] waits for any child. *)
  | Exit of int
  | Kill of { pid : int; signal : int }
  | Getenv of string
  | Setenv of { name : string; value : string }
  | Getacl of string
      (** Identity-box call: read the ACL governing a path. *)
  | Setacl of { path : string; entry : string }
      (** Identity-box call: add/replace one ACL entry (needs [a]). *)
  | Compute of int64
      (** Not a system call: user-mode CPU burn of the given
          nanoseconds.  Never trapped, never charged syscall cost. *)

type value =
  | Unit
  | Int of int
  | Str of string
  | Data of string  (** Bulk bytes, e.g. a [read] payload. *)
  | Stat_v of Idbox_vfs.Fs.stat
  | Names of string list
  | Wait_v of { pid : int; status : int }
  | Fd_pair of { rd : int; wr : int }  (** The two ends of a pipe. *)

type result = (value, Idbox_vfs.Errno.t) Stdlib.result

val name : request -> string
(** The syscall's conventional name ("open", "stat", ...), for
    accounting and diagnostics. *)

val number : request -> int
(** The call's stable sysent number in [[0, count)].  The dispatch
    table is indexed by it, so the numbering is ABI: append only. *)

val count : int
(** How many system calls exist ([number] ranges over [[0, count)]). *)

val prototypes : request list
(** One representative value per constructor, in {!number} order —
    what a sysent builder iterates to stamp out one entry per call. *)

val register_args : request -> int
(** Argument registers the call uses at the trap boundary (DragonFly's
    [sy_narg]).  Static per call, unlike {!argument_words} which counts
    PEEKed words and depends on path lengths. *)

val is_metadata : request -> bool
(** True for small metadata operations (stat, open, unlink, ...): the
    class whose per-call overhead dominates the [make] workload. *)

val payload_bytes : request -> result -> int
(** Bulk bytes moved by the call (read/write payload sizes); 0 for
    non-data calls.  Used by the cost model's copy terms. *)

val argument_words : request -> int
(** Machine words of small arguments a tracer must peek to decode the
    call (paths count by length / word size). *)

val result_words : result -> int
(** Machine words a tracer must poke to inject the result. *)

val pp_request : Format.formatter -> request -> unit
val pp_value : Format.formatter -> value -> unit
val pp_result : Format.formatter -> result -> unit
