(* Table-driven syscall dispatch, after DragonFly BSD's sysent/sysmsg:
   one entry per system call carrying its handler, register arity and
   an enforcement pre-check; one message per invocation that either
   completes synchronously or parks and is completed later by a wakeup
   path.  Generic in the handler context and outcome so the table can
   be built per kernel instance without circular dependencies. *)

type ('ctx, 'outcome) entry = {
  se_number : int;
  se_name : string;
  se_narg : int;  (* argument registers at the trap boundary *)
  se_enforce :
    ('ctx -> Syscall.request -> (unit, Idbox_vfs.Errno.t) result) option;
      (* The pre-check run on the entry path before the handler; [None]
         marks calls that never trap (and so are never checked). *)
  se_call : 'ctx -> Syscall.request -> 'outcome;
}

let entry ~number ~name ~narg ?enforce call =
  { se_number = number; se_name = name; se_narg = narg;
    se_enforce = enforce; se_call = call }

(* Build a table from a numbering, verifying every entry sits at its
   own number — a misnumbered sysent is a kernel bug, not a value. *)
let table ~count make =
  let arr = Array.init count make in
  Array.iteri
    (fun i e ->
      if e.se_number <> i then
        invalid_arg
          (Printf.sprintf "Sysent.table: entry %S numbered %d at slot %d"
             e.se_name e.se_number i))
    arr;
  arr

let dispatch arr req = arr.(Syscall.number req)

(* --- sysmsg ----------------------------------------------------------- *)

type 'outcome state =
  | Pending
  | Completed of 'outcome

type 'outcome sysmsg = {
  sm_number : int;
  sm_name : string;
  sm_pid : int;
  sm_submitted_ns : int64;
  mutable sm_state : 'outcome state;
}

let msg ~pid ~at e =
  { sm_number = e.se_number; sm_name = e.se_name; sm_pid = pid;
    sm_submitted_ns = at; sm_state = Pending }

(* Complete a message exactly once: [true] when this call did it,
   [false] when the message had already completed (a late wakeup — the
   caller decides whether that is a bug or just a discard). *)
let complete m outcome =
  match m.sm_state with
  | Completed _ -> false
  | Pending ->
    m.sm_state <- Completed outcome;
    true

let is_pending m = match m.sm_state with Pending -> true | Completed _ -> false

let outcome m =
  match m.sm_state with Pending -> None | Completed o -> Some o
