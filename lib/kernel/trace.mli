(** The kernel's tracing hook: the simulated analogue of [ptrace]'s
    syscall-stop protocol.

    A traced process stops at every system call entry and exit; the
    tracer may rewrite the call at entry (in particular, {e nullify} it
    into a harmless [getpid], the canonical interposition move of
    Fig. 4) and replace the result at exit.  Children of a traced
    process are traced by the same handler, so nothing escapes the box
    by forking.

    The handler callbacks are host-level code; the context-switch and
    data-movement prices a real userspace supervisor would pay are
    charged to the simulated clock by the kernel and by the
    {!Idbox_ptrace} veneer. *)

type entry_action =
  | Pass  (** Let the original call proceed. *)
  | Rewrite of Syscall.request
      (** Replace the call — e.g. nullify to [Getpid], or redirect a
          [read] into the I/O channel. *)
  | Deny of Idbox_vfs.Errno.t
      (** Nullify and fail with the given errno without executing
          anything (the "side effects of denying" pitfall: any return
          value, including [EACCES], can be injected). *)

type exit_action =
  | Keep  (** Keep the executed call's result. *)
  | Replace of Syscall.result  (** Inject a different result. *)

type event =
  | Spawned of { pid : int; parent : int }
      (** A traced process created [pid]; it is traced too. *)
  | Exited of { pid : int; code : int }

type handler = {
  on_entry : pid:int -> Syscall.request -> entry_action;
  on_exit : pid:int -> Syscall.request -> Syscall.result -> exit_action;
  on_event : event -> unit;
}

val pass_through : handler
(** A do-nothing tracer: every call passes, every result keeps.  Useful
    for measuring bare trap overhead. *)

(** {1 Structured trace spans}

    Orthogonal to the syscall-stop protocol above: a bounded ring of
    structured records, one per serviced system call, that the kernel
    (and any instrumented layer) appends to.  The ring never grows —
    once full, the oldest span is overwritten and counted in
    {!dropped} — so tracing is safe to leave on in long runs. *)

type span = {
  sp_seq : int;  (** Monotonic emit sequence number (0-based). *)
  sp_time : int64;  (** Simulated clock at syscall entry, ns. *)
  sp_pid : int;
  sp_identity : string;  (** Acting principal, or ["-"] when unknown. *)
  sp_syscall : string;
  sp_verdict : string;  (** ["ok"] or an errno name, e.g. ["EACCES"]. *)
  sp_cost_ns : int64;  (** Simulated time charged to the call. *)
}

type sink = span -> unit
(** Sinks observe every span at emit time — even ones later overwritten
    in the ring — so a streaming sink loses nothing. *)

type ring

val default_capacity : int
(** 1024 spans. *)

val ring : ?capacity:int -> unit -> ring
(** A fresh ring.  [capacity] is clamped to at least 1.  The span
    storage is allocated lazily on the first emit. *)

val capacity : ring -> int

val total : ring -> int
(** Spans ever emitted (including overwritten ones). *)

val length : ring -> int
(** Spans currently retained, [<= capacity]. *)

val dropped : ring -> int
(** [total - length]: spans overwritten by wraparound. *)

val emit : ring -> span -> unit

val span :
  ring ->
  time:int64 ->
  pid:int ->
  identity:string ->
  syscall:string ->
  verdict:string ->
  cost_ns:int64 ->
  unit
(** Build and {!emit} a span, assigning the next sequence number. *)

val add_sink : ring -> sink -> unit
val clear_sinks : ring -> unit

val iter : ring -> (span -> unit) -> unit
(** Oldest retained span first. *)

val to_list : ring -> span list
(** Retained spans, oldest first. *)

val reset : ring -> unit
(** Drop all spans and the sequence count; sinks are kept. *)

val span_json : span -> string
(** One span as a JSON object. *)

val to_json : ring -> string
(** [{"capacity":..,"total":..,"dropped":..,"spans":[..]}], spans
    oldest first. *)

val pp_span : Format.formatter -> span -> unit
