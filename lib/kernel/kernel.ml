module Fs = Idbox_vfs.Fs
module Inode = Idbox_vfs.Inode
module Path = Idbox_vfs.Path
module Errno = Idbox_vfs.Errno
module Perm = Idbox_vfs.Perm

type stats = {
  mutable syscalls : int;
  mutable trapped : int;
  mutable context_switches : int;
  mutable delegated : int;
  mutable peek_poke_words : int;
  mutable channel_bytes : int;
  mutable spawns : int;
}

type security_hook = pid:int -> View.t -> Syscall.request -> (unit, Errno.t) result

type exec_outcome =
  | Done of Syscall.result
  | Blocks
  | Exits of int

type t = {
  k_clock : Clock.t;
  k_fs : Fs.t;
  k_accounts : Account.t;
  k_cost : Cost.t;
  k_stats : stats;
  k_metrics : Metrics.t;
  k_trace : Trace.ring;
  procs : (int, Proc.t) Hashtbl.t;
  runq : int Queue.t;
  mutable next_pid : int;
  mutable security : security_hook option;
  mutable identity_of : (int -> string option) option;
  pipe_waiters : (int, int list ref) Hashtbl.t;
      (* pipe ino -> pids blocked reading it *)
  mutable sysent_tbl : (Proc.t, exec_outcome) Sysent.entry array;
      (* the dispatch table; built lazily because its handlers close
         over [t] ([[||]] = not built yet) *)
  parked : (int, Syscall.result Sysent.sysmsg) Hashtbl.t;
      (* pid -> the sysmsg of its parked (blocking) invocation; a fiber
         has at most one syscall in flight, so pid is the right key *)
  mutable k_policy : Policy.t option;
      (* the installed compiled-policy program consulted at syscall
         entry, if any (see Policy); owned by the enforcement engine *)
  mutable sc_counters : Metrics.counter array;
      (* per-syscall counter/histogram handles indexed by syscall
         number, interned when the sysent table is built: the dispatch
         path must not pay a string-keyed registry lookup per call *)
  mutable sc_hists : Metrics.histogram array;
  c_sysmsg_parked : Metrics.counter;
  c_sysmsg_completed : Metrics.counter;
  c_sysmsg_late : Metrics.counter;
}

let clock t = t.k_clock
let now t = Clock.now t.k_clock
let fs t = t.k_fs
let accounts t = t.k_accounts
let cost t = t.k_cost
let stats t = t.k_stats
let metrics t = t.k_metrics
let trace_ring t = t.k_trace

let charge t ns = Clock.advance t.k_clock ns

let fail_errno ctx = function
  | Ok _ -> ()
  | Error e -> invalid_arg (ctx ^ ": " ^ Errno.to_string e)

let refresh_passwd t =
  Fs.write_file t.k_fs ~uid:0 ~mode:0o644 "/etc/passwd"
    (Account.render_passwd t.k_accounts)
  |> fail_errno "Kernel.refresh_passwd"

let create ?(cost = Cost.default) ?accounts ?clock () =
  let k_clock = match clock with Some c -> c | None -> Clock.create () in
  let k_fs = Fs.create ~clock:(Clock.reading k_clock) () in
  let k_accounts = match accounts with Some a -> a | None -> Account.create () in
  let k_metrics = Metrics.create () in
  let t =
    {
      k_clock;
      k_fs;
      k_accounts;
      k_cost = cost;
      k_stats =
        {
          syscalls = 0;
          trapped = 0;
          context_switches = 0;
          delegated = 0;
          peek_poke_words = 0;
          channel_bytes = 0;
          spawns = 0;
        };
      k_metrics;
      k_trace = Trace.ring ();
      procs = Hashtbl.create 32;
      runq = Queue.create ();
      next_pid = 1;
      security = None;
      identity_of = None;
      pipe_waiters = Hashtbl.create 8;
      sysent_tbl = [||];
      parked = Hashtbl.create 8;
      k_policy = None;
      sc_counters = [||];
      sc_hists = [||];
      c_sysmsg_parked = Metrics.counter k_metrics "kernel.sysmsg.parked";
      c_sysmsg_completed = Metrics.counter k_metrics "kernel.sysmsg.completed";
      c_sysmsg_late = Metrics.counter k_metrics "kernel.sysmsg.late";
    }
  in
  fail_errno "Kernel.create" (Fs.mkdir_p k_fs ~uid:0 "/etc");
  fail_errno "Kernel.create" (Fs.mkdir_p k_fs ~uid:0 "/home");
  fail_errno "Kernel.create" (Fs.mkdir_p k_fs ~uid:0 "/bin");
  fail_errno "Kernel.create" (Fs.mkdir_p k_fs ~uid:0 ~mode:0o777 "/tmp");
  refresh_passwd t;
  t

let add_user t name =
  match Account.add t.k_accounts name with
  | Error _ as e -> e
  | Ok entry ->
    let ( let* ) r f =
      match r with Ok _ -> f () | Error e -> Error (Errno.message e)
    in
    let result =
      let* () = Fs.mkdir_p t.k_fs ~uid:0 entry.Account.home in
      let* () = Fs.chown t.k_fs ~uid:0 ~owner:entry.Account.uid entry.Account.home in
      let* () = Fs.chmod t.k_fs ~uid:0 ~mode:0o755 entry.Account.home in
      Ok entry
    in
    (match result with
     | Ok _ ->
       refresh_passwd t;
       Ok entry
     | Error _ as e -> e)

let note_peek_poke t ~words =
  t.k_stats.peek_poke_words <- t.k_stats.peek_poke_words + words;
  charge t (Cost.peek_poke t.k_cost ~words)

let note_channel_copy t ~bytes =
  t.k_stats.channel_bytes <- t.k_stats.channel_bytes + bytes;
  charge t (Cost.copy_bytes t.k_cost bytes)

let make_view t ~uid ?(cwd = "/") () = ignore t; View.make ~uid ~cwd ()

(* ------------------------------------------------------------------ *)
(* File-level system call implementation against a view.              *)
(* ------------------------------------------------------------------ *)

let abs (view : View.t) path = Path.join view.cwd path

(* [impl_file] returns [None] for process-management calls, which need
   PCB context and are handled by [exec_process_call]. *)
let impl_file t (view : View.t) req : Syscall.result option =
  let uid = view.View.uid in
  let some r = Some r in
  match req with
  | Syscall.Getuid -> some (Ok (Syscall.Int uid))
  | Syscall.Get_user_name ->
    some (Ok (Syscall.Str (Account.name_of_uid t.k_accounts uid)))
  | Syscall.Getcwd -> some (Ok (Syscall.Str view.View.cwd))
  | Syscall.Chdir path ->
    let p = abs view path in
    (match Fs.resolve t.k_fs ~uid p with
     | Error e -> some (Error e)
     | Ok inode ->
       if Inode.kind inode <> Inode.Directory then some (Error Errno.ENOTDIR)
       else if not (Perm.check ~uid ~owner:(Inode.uid inode) ~mode:(Inode.mode inode) Perm.X)
       then some (Error Errno.EACCES)
       else begin
         view.View.cwd <- Path.normalize p;
         some (Ok Syscall.Unit)
       end)
  | Syscall.Open { path; flags; mode } ->
    let p = abs view path in
    (match Fs.open_file t.k_fs ~uid ~flags ~mode p with
     | Error e -> some (Error e)
     | Ok inode ->
       let pos = if flags.Fs.append then Inode.size inode else 0 in
       (match Fd_table.alloc view.View.fds { Fd_table.inode; of_path = p; flags; pos } with
        | Error e -> some (Error e)
        | Ok fd -> some (Ok (Syscall.Int fd))))
  | Syscall.Close fd ->
    (match Fd_table.close view.View.fds fd with
     | Error e -> some (Error e)
     | Ok () -> some (Ok Syscall.Unit))
  | Syscall.Read { fd; len } ->
    (match Fd_table.find view.View.fds fd with
     | None -> some (Error Errno.EBADF)
     | Some f ->
       if not f.Fd_table.flags.Fs.rd then some (Error Errno.EBADF)
       else begin
         let data = Inode.read f.Fd_table.inode ~off:f.Fd_table.pos ~len in
         f.Fd_table.pos <- f.Fd_table.pos + Bytes.length data;
         some (Ok (Syscall.Data (Bytes.to_string data)))
       end)
  | Syscall.Write { fd; data } ->
    (match Fd_table.find view.View.fds fd with
     | None -> some (Error Errno.EBADF)
     | Some f ->
       if not f.Fd_table.flags.Fs.wr then some (Error Errno.EBADF)
       else begin
         let off =
           if f.Fd_table.flags.Fs.append then Inode.size f.Fd_table.inode
           else f.Fd_table.pos
         in
         let n = Inode.write f.Fd_table.inode ~off (Bytes.of_string data) in
         f.Fd_table.pos <- off + n;
         Inode.set_mtime f.Fd_table.inode (now t);
         some (Ok (Syscall.Int n))
       end)
  | Syscall.Pread { fd; off; len } ->
    (match Fd_table.find view.View.fds fd with
     | None -> some (Error Errno.EBADF)
     | Some f ->
       if not f.Fd_table.flags.Fs.rd then some (Error Errno.EBADF)
       else if off < 0 then some (Error Errno.EINVAL)
       else
         let data = Inode.read f.Fd_table.inode ~off ~len in
         some (Ok (Syscall.Data (Bytes.to_string data))))
  | Syscall.Pwrite { fd; off; data } ->
    (match Fd_table.find view.View.fds fd with
     | None -> some (Error Errno.EBADF)
     | Some f ->
       if not f.Fd_table.flags.Fs.wr then some (Error Errno.EBADF)
       else if off < 0 then some (Error Errno.EINVAL)
       else begin
         let n = Inode.write f.Fd_table.inode ~off (Bytes.of_string data) in
         Inode.set_mtime f.Fd_table.inode (now t);
         some (Ok (Syscall.Int n))
       end)
  | Syscall.Lseek { fd; off; whence } ->
    (match Fd_table.find view.View.fds fd with
     | None -> some (Error Errno.EBADF)
     | Some f ->
       let base =
         match whence with
         | Syscall.Seek_set -> 0
         | Syscall.Seek_cur -> f.Fd_table.pos
         | Syscall.Seek_end -> Inode.size f.Fd_table.inode
       in
       let npos = base + off in
       if npos < 0 then some (Error Errno.EINVAL)
       else begin
         f.Fd_table.pos <- npos;
         some (Ok (Syscall.Int npos))
       end)
  | Syscall.Stat path ->
    (match Fs.stat t.k_fs ~uid (abs view path) with
     | Ok st -> some (Ok (Syscall.Stat_v st))
     | Error e -> some (Error e))
  | Syscall.Lstat path ->
    (match Fs.lstat t.k_fs ~uid (abs view path) with
     | Ok st -> some (Ok (Syscall.Stat_v st))
     | Error e -> some (Error e))
  | Syscall.Fstat fd ->
    (match Fd_table.find view.View.fds fd with
     | None -> some (Error Errno.EBADF)
     | Some f -> some (Ok (Syscall.Stat_v (Fs.fstat f.Fd_table.inode))))
  | Syscall.Mkdir { path; mode } ->
    (match Fs.mkdir t.k_fs ~uid ~mode (abs view path) with
     | Ok _ -> some (Ok Syscall.Unit)
     | Error e -> some (Error e))
  | Syscall.Rmdir path ->
    (match Fs.rmdir t.k_fs ~uid (abs view path) with
     | Ok () -> some (Ok Syscall.Unit)
     | Error e -> some (Error e))
  | Syscall.Unlink path ->
    (match Fs.unlink t.k_fs ~uid (abs view path) with
     | Ok () -> some (Ok Syscall.Unit)
     | Error e -> some (Error e))
  | Syscall.Link { target; path } ->
    (match Fs.link t.k_fs ~uid ~target:(abs view target) (abs view path) with
     | Ok () -> some (Ok Syscall.Unit)
     | Error e -> some (Error e))
  | Syscall.Symlink { target; path } ->
    (* The target is stored verbatim, as on Unix. *)
    (match Fs.symlink t.k_fs ~uid ~target (abs view path) with
     | Ok () -> some (Ok Syscall.Unit)
     | Error e -> some (Error e))
  | Syscall.Readlink path ->
    (match Fs.readlink t.k_fs ~uid (abs view path) with
     | Ok target -> some (Ok (Syscall.Str target))
     | Error e -> some (Error e))
  | Syscall.Rename { src; dst } ->
    (match Fs.rename t.k_fs ~uid ~src:(abs view src) ~dst:(abs view dst) with
     | Ok () -> some (Ok Syscall.Unit)
     | Error e -> some (Error e))
  | Syscall.Readdir path ->
    (match Fs.readdir t.k_fs ~uid (abs view path) with
     | Ok names -> some (Ok (Syscall.Names names))
     | Error e -> some (Error e))
  | Syscall.Chmod { path; mode } ->
    (match Fs.chmod t.k_fs ~uid ~mode (abs view path) with
     | Ok () -> some (Ok Syscall.Unit)
     | Error e -> some (Error e))
  | Syscall.Chown { path; owner } ->
    (match Fs.chown t.k_fs ~uid ~owner (abs view path) with
     | Ok () -> some (Ok Syscall.Unit)
     | Error e -> some (Error e))
  | Syscall.Truncate { path; len } ->
    let flags = { Fs.rd = false; wr = true; creat = false; excl = false;
                  trunc = false; append = false } in
    (match Fs.open_file t.k_fs ~uid ~flags ~mode:0 (abs view path) with
     | Error e -> some (Error e)
     | Ok inode ->
       if len < 0 then some (Error Errno.EINVAL)
       else begin
         Inode.truncate inode ~len;
         Inode.set_mtime inode (now t);
         some (Ok Syscall.Unit)
       end)
  | Syscall.Getenv name ->
    (match View.getenv view name with
     | Some v -> some (Ok (Syscall.Str v))
     | None -> some (Error Errno.ENOENT))
  | Syscall.Setenv { name; value } ->
    View.setenv view name value;
    some (Ok Syscall.Unit)
  | Syscall.Getacl _ | Syscall.Setacl _ ->
    (* ACLs are an identity-box construct: the stock kernel has no such
       call — precisely the gap the paper's user-level agent fills. *)
    some (Error Errno.ENOSYS)
  | Syscall.Getpid | Syscall.Getppid | Syscall.Pipe | Syscall.Spawn _
  | Syscall.Waitpid _ | Syscall.Exit _ | Syscall.Kill _ | Syscall.Compute _ ->
    None

let execute t view req =
  let result =
    match impl_file t view req with
    | Some r -> r
    | None ->
      (match req with
       | Syscall.Getpid -> Ok (Syscall.Int 0)
       | _ -> Error Errno.ENOSYS)
  in
  charge t (Cost.direct t.k_cost req result);
  result

let delegate t view req =
  t.k_stats.delegated <- t.k_stats.delegated + 1;
  t.k_stats.context_switches <- t.k_stats.context_switches + 2;
  charge t (Int64.mul 2L t.k_cost.Cost.context_switch);
  execute t view req

(* ------------------------------------------------------------------ *)
(* Process lifecycle.                                                  *)
(* ------------------------------------------------------------------ *)

let find_proc t pid = Hashtbl.find_opt t.procs pid

let enqueue t pid = Queue.push pid t.runq

(* --- sysmsg parking ------------------------------------------------- *)

(* A blocking invocation parks its sysmsg here; the wakeup path that
   eventually delivers the result completes it.  Single-completion is
   enforced by the message itself: a second completion attempt (a
   wakeup racing a kill) is counted, not applied. *)

let park_sysmsg t (msg : Syscall.result Sysent.sysmsg) =
  Hashtbl.replace t.parked msg.Sysent.sm_pid msg;
  Metrics.incr t.c_sysmsg_parked

let complete_parked t pid result =
  match Hashtbl.find_opt t.parked pid with
  | None -> ()
  | Some msg ->
    Hashtbl.remove t.parked pid;
    if Sysent.complete msg result then Metrics.incr t.c_sysmsg_completed
    else Metrics.incr t.c_sysmsg_late

let parked_count t = Hashtbl.length t.parked

let alloc_pid t =
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  pid

let add_process t ~parent ~uid ~cwd ~env ~tracer ~main ~args =
  let pid = alloc_pid t in
  let pcb = Proc.make ~pid ~parent ~uid ~cwd ~env ~main ~args in
  pcb.Proc.tracer <- tracer;
  Hashtbl.replace t.procs pid pcb;
  (match find_proc t parent with
   | Some parent_pcb ->
     parent_pcb.Proc.children <- pid :: parent_pcb.Proc.children;
     (* fork semantics: the child inherits the parent's descriptors
        (fresh offsets, shared objects; pipe reference counts grow). *)
     List.iter
       (fun fd ->
         match Fd_table.find parent_pcb.Proc.view.View.fds fd with
         | None -> ()
         | Some f ->
           Fd_table.alloc_at pcb.Proc.view.View.fds fd
             {
               Fd_table.inode = f.Fd_table.inode;
               of_path = f.Fd_table.of_path;
               flags = f.Fd_table.flags;
               pos = f.Fd_table.pos;
             };
           (match Inode.pipe_of f.Fd_table.inode with
            | Some pipe ->
              if f.Fd_table.flags.Fs.rd then Inode.pipe_add_reader pipe;
              if f.Fd_table.flags.Fs.wr then Inode.pipe_add_writer pipe
            | None -> ()))
       (Fd_table.fds parent_pcb.Proc.view.View.fds)
   | None -> ());
  t.k_stats.spawns <- t.k_stats.spawns + 1;
  (match tracer with
   | Some tr -> tr.Trace.on_event (Trace.Spawned { pid; parent })
   | None -> ());
  enqueue t pid;
  pid

let spawn_main t ?(parent = 0) ?(uid = 0) ?(cwd = "/") ?(env = []) ?tracer ~main
    ~args () =
  let tracer =
    match tracer with
    | Some _ -> tracer
    | None ->
      (match find_proc t parent with
       | Some parent_pcb -> parent_pcb.Proc.tracer
       | None -> None)
  in
  add_process t ~parent ~uid ~cwd ~env ~tracer ~main ~args

(* Resolve an executable file to a registered program. *)
let load_program t ~uid path =
  match Fs.resolve t.k_fs ~uid path with
  | Error e -> Error e
  | Ok inode ->
    if Inode.kind inode <> Inode.Regular then Error Errno.EACCES
    else if not (Perm.check ~uid ~owner:(Inode.uid inode) ~mode:(Inode.mode inode) Perm.X)
    then Error Errno.EACCES
    else
      (match Program.of_marker (Inode.contents inode) with
       | None -> Error Errno.EINVAL
       | Some name ->
         (match Program.find name with
          | None -> Error Errno.EINVAL
          | Some main -> Ok main))

let spawn t ?(parent = 0) ?(uid = 0) ?(cwd = "/") ?(env = []) ?tracer ~path ~args
    () =
  let p = Path.join cwd path in
  match load_program t ~uid p with
  | Error e -> Error e
  | Ok main -> Ok (spawn_main t ~parent ~uid ~cwd ~env ?tracer ~main ~args ())

(* ------------------------------------------------------------------ *)
(* Fiber execution.                                                    *)
(* ------------------------------------------------------------------ *)

let wake_waiting_parent t (child : Proc.t) =
  match find_proc t child.Proc.parent with
  | None -> ()
  | Some parent ->
    (match parent.Proc.run with
     | Proc.Waiting { wk; wreq = Syscall.Waitpid want as wreq }
       when want = -1 || want = child.Proc.pid ->
       let code =
         match child.Proc.run with Proc.Zombie c -> c | _ -> assert false
       in
       child.Proc.run <- Proc.Reaped code;
       parent.Proc.children <-
         List.filter (fun pid -> pid <> child.Proc.pid) parent.Proc.children;
       let result = Ok (Syscall.Wait_v { pid = child.Proc.pid; status = code }) in
       let final =
         match parent.Proc.tracer with
         | None -> result
         | Some tr ->
           t.k_stats.context_switches <- t.k_stats.context_switches + 2;
           charge t (Int64.mul 2L t.k_cost.Cost.context_switch);
           (match tr.Trace.on_exit ~pid:parent.Proc.pid wreq result with
            | Trace.Keep -> result
            | Trace.Replace r -> r)
       in
       complete_parked t parent.Proc.pid final;
       parent.Proc.run <- Proc.Deliver (wk, final);
       enqueue t parent.Proc.pid
     | _ -> ())

(* ------------------------------------------------------------------ *)
(* Pipes.                                                              *)
(* ------------------------------------------------------------------ *)

let pipe_of_fd (pcb : Proc.t) fd =
  match Fd_table.find pcb.Proc.view.View.fds fd with
  | None -> None
  | Some f ->
    (match Inode.pipe_of f.Fd_table.inode with
     | Some pipe -> Some (f, pipe)
     | None -> None)

let waiters_for t ino =
  match Hashtbl.find_opt t.pipe_waiters ino with
  | Some l -> l
  | None ->
    let l = ref [] in
    Hashtbl.replace t.pipe_waiters ino l;
    l

(* Deliver blocked reads that can now complete: data arrived, or the
   last writer vanished (EOF).  Waiters that still cannot proceed stay
   registered; stale entries (killed or retargeted processes) drop. *)
let wake_pipe_readers t inode =
  match Inode.pipe_of inode with
  | None -> ()
  | Some pipe ->
    let waiters = waiters_for t (Inode.ino inode) in
    let still = ref [] in
    List.iter
      (fun pid ->
        match find_proc t pid with
        | None -> ()
        | Some pcb ->
          (match pcb.Proc.run with
           | Proc.Waiting { wk; wreq = Syscall.Read { fd; len } as wreq }
             when (match pipe_of_fd pcb fd with
                   | Some (_, p) -> p == pipe
                   | None -> false) ->
             if Inode.pipe_available pipe > 0 || Inode.pipe_writers pipe = 0
             then begin
               let result = Ok (Syscall.Data (Inode.pipe_pull pipe len)) in
               charge t (Cost.direct t.k_cost wreq result);
               let final =
                 match pcb.Proc.tracer with
                 | None -> result
                 | Some tr ->
                   t.k_stats.context_switches <- t.k_stats.context_switches + 2;
                   charge t (Int64.mul 2L t.k_cost.Cost.context_switch);
                   (match tr.Trace.on_exit ~pid wreq result with
                    | Trace.Keep -> result
                    | Trace.Replace r -> r)
               in
               complete_parked t pid final;
               pcb.Proc.run <- Proc.Deliver (wk, final);
               enqueue t pid
             end
             else still := pid :: !still
           | _ -> ()))
      !waiters;
    waiters := List.rev !still

(* Drop a process's pipe references (close or exit) and wake readers
   that may now see EOF. *)
let release_pipe_end t (f : Fd_table.open_file) =
  match Inode.pipe_of f.Fd_table.inode with
  | None -> ()
  | Some pipe ->
    if f.Fd_table.flags.Fs.rd then Inode.pipe_drop_reader pipe;
    if f.Fd_table.flags.Fs.wr then Inode.pipe_drop_writer pipe;
    if Inode.pipe_writers pipe = 0 then wake_pipe_readers t f.Fd_table.inode

let release_all_pipes t (view : View.t) =
  List.iter
    (fun fd ->
      match Fd_table.find view.View.fds fd with
      | Some f -> release_pipe_end t f
      | None -> ())
    (Fd_table.fds view.View.fds)

let on_fiber_end t (pcb : Proc.t) code =
  release_all_pipes t pcb.Proc.view;
  Fd_table.close_all pcb.Proc.view.View.fds;
  pcb.Proc.run <- Proc.Zombie code;
  (match pcb.Proc.tracer with
   | Some tr -> tr.Trace.on_event (Trace.Exited { pid = pcb.Proc.pid; code })
   | None -> ());
  wake_waiting_parent t pcb

let start_fiber t (pcb : Proc.t) main args =
  let handler =
    {
      Effect.Deep.retc = (fun code -> on_fiber_end t pcb code);
      exnc =
        (fun exn ->
          match exn with
          | Program.Exited code -> on_fiber_end t pcb code
          | Program.Killed signal -> on_fiber_end t pcb (128 + signal)
          | e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Program.Sys req ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                pcb.Proc.pending <- Some (req, k))
          | _ -> None);
    }
  in
  Effect.Deep.match_with (fun () -> main args) () handler

(* ------------------------------------------------------------------ *)
(* Kill.                                                               *)
(* ------------------------------------------------------------------ *)

let terminate t (pcb : Proc.t) ~signal =
  match pcb.Proc.run with
  | Proc.Zombie _ | Proc.Reaped _ -> Error Errno.ESRCH
  | Proc.Not_started _ ->
    pcb.Proc.run <- Proc.Running;
    on_fiber_end t pcb (128 + signal);
    Ok ()
  | Proc.Deliver (k, _) ->
    pcb.Proc.run <- Proc.Running;
    Effect.Deep.discontinue k (Program.Killed signal);
    Ok ()
  | Proc.Waiting { wk; _ } ->
    (* The parked invocation dies with the process: its sysmsg
       completes as interrupted, exactly once. *)
    complete_parked t pcb.Proc.pid (Error Errno.EINTR);
    pcb.Proc.run <- Proc.Running;
    Effect.Deep.discontinue wk (Program.Killed signal);
    Ok ()
  | Proc.Running ->
    (* Self-kill from within a syscall is handled by the caller. *)
    Error Errno.EAGAIN

let kill t ~pid ~signal =
  match find_proc t pid with
  | None -> Error Errno.ESRCH
  | Some pcb -> terminate t pcb ~signal

(* ------------------------------------------------------------------ *)
(* System call service.                                                *)
(* ------------------------------------------------------------------ *)

let try_reap t (pcb : Proc.t) want =
  let zombie_child () =
    List.filter_map
      (fun pid ->
        match find_proc t pid with
        | Some child ->
          (match child.Proc.run with
           | Proc.Zombie code when want = -1 || want = child.Proc.pid ->
             Some (child, code)
           | _ -> None)
        | None -> None)
      pcb.Proc.children
    |> function
    | [] -> None
    | hit :: _ -> Some hit
  in
  match zombie_child () with
  | Some (child, code) ->
    child.Proc.run <- Proc.Reaped code;
    pcb.Proc.children <-
      List.filter (fun pid -> pid <> child.Proc.pid) pcb.Proc.children;
    Some (Ok (Syscall.Wait_v { pid = child.Proc.pid; status = code }))
  | None ->
    let has_candidate =
      List.exists
        (fun pid ->
          (want = -1 || want = pid)
          && match find_proc t pid with Some c -> Proc.is_alive c | None -> false)
        pcb.Proc.children
    in
    if has_candidate then None else Some (Error Errno.ECHILD)

(* Pipe-touching requests need process context and may block; they are
   intercepted before the generic file-level implementation.  [None]
   means "not a pipe operation" — fall through. *)
let pipe_request t (pcb : Proc.t) req : exec_outcome option =
  let done_charged result =
    charge t (Cost.direct t.k_cost req result);
    Some (Done result)
  in
  match req with
  | Syscall.Pipe ->
    let inode = Fs.make_pipe t.k_fs in
    let base =
      { Fs.rd = false; wr = false; creat = false; excl = false; trunc = false;
        append = false }
    in
    let fds = pcb.Proc.view.View.fds in
    (match
       Fd_table.alloc fds
         { Fd_table.inode; of_path = "pipe:[r]"; flags = { base with Fs.rd = true }; pos = 0 }
     with
     | Error e -> done_charged (Error e)
     | Ok rd ->
       (match
          Fd_table.alloc fds
            { Fd_table.inode; of_path = "pipe:[w]"; flags = { base with Fs.wr = true };
              pos = 0 }
        with
        | Error e ->
          ignore (Fd_table.close fds rd);
          done_charged (Error e)
        | Ok wr -> done_charged (Ok (Syscall.Fd_pair { rd; wr }))))
  | Syscall.Read { fd; len } ->
    (match pipe_of_fd pcb fd with
     | None -> None
     | Some (f, pipe) ->
       if not f.Fd_table.flags.Fs.rd then done_charged (Error Errno.EBADF)
       else if Inode.pipe_available pipe > 0 then
         done_charged (Ok (Syscall.Data (Inode.pipe_pull pipe len)))
       else if Inode.pipe_writers pipe = 0 then
         done_charged (Ok (Syscall.Data ""))
       else begin
         (* Block until a writer supplies data or the last writer goes. *)
         let waiters = waiters_for t (Inode.ino f.Fd_table.inode) in
         waiters := !waiters @ [ pcb.Proc.pid ];
         Some Blocks
       end)
  | Syscall.Write { fd; data } ->
    (match pipe_of_fd pcb fd with
     | None -> None
     | Some (f, pipe) ->
       if not f.Fd_table.flags.Fs.wr then done_charged (Error Errno.EBADF)
       else if Inode.pipe_readers pipe = 0 then done_charged (Error Errno.EPIPE)
       else begin
         Inode.pipe_push pipe data;
         let outcome = done_charged (Ok (Syscall.Int (String.length data))) in
         wake_pipe_readers t f.Fd_table.inode;
         outcome
       end)
  | Syscall.Pread { fd; _ } | Syscall.Pwrite { fd; _ } | Syscall.Lseek { fd; _ }
    ->
    (match pipe_of_fd pcb fd with
     | None -> None
     | Some _ -> done_charged (Error Errno.ESPIPE))
  | Syscall.Close fd ->
    (match pipe_of_fd pcb fd with
     | None -> None
     | Some (f, _) ->
       ignore (Fd_table.close pcb.Proc.view.View.fds fd);
       release_pipe_end t f;
       done_charged (Ok Syscall.Unit))
  | _ -> None

(* ------------------------------------------------------------------ *)
(* The sysent table.                                                   *)
(* ------------------------------------------------------------------ *)

(* One entry per system call, each carrying the handler for its family
   and the enforcement pre-check hook.  Handlers close over [t], so the
   table is built lazily per kernel instance; the enforcement closure
   reads [t.security] at call time, so installing a hook after the
   table is built still takes effect.  Every handler charges the
   direct cost for completing calls; the blocking/exit control-flow
   cases charge nothing here (their wakeup paths do). *)
let build_sysent t : (Proc.t, exec_outcome) Sysent.entry array =
  let enforce (pcb : Proc.t) req =
    match t.security with
    | None -> Ok ()
    | Some hook -> hook ~pid:pcb.Proc.pid pcb.Proc.view req
  in
  let done_charged req result =
    charge t (Cost.direct t.k_cost req result);
    Done result
  in
  (* Everything [impl_file] covers: plain file/metadata calls against
     the caller's view. *)
  let call_file (pcb : Proc.t) req =
    match impl_file t pcb.Proc.view req with
    | Some result -> done_charged req result
    | None -> assert false
  in
  (* fd calls that may hit a pipe end: intercepted for pipe semantics
     (including blocking reads), otherwise plain file calls. *)
  let call_pipe_or_file pcb req =
    match pipe_request t pcb req with
    | Some outcome -> outcome
    | None -> call_file pcb req
  in
  let call_pipe_only pcb req =
    match pipe_request t pcb req with
    | Some outcome -> outcome
    | None -> assert false
  in
  (* The paper's call: the high-level identity of the caller, from the
     installed provider when there is one. *)
  let call_identity (pcb : Proc.t) req =
    match t.identity_of with
    | Some provider ->
      let result =
        match provider pcb.Proc.pid with
        | Some identity -> Ok (Syscall.Str identity)
        | None ->
          Ok
            (Syscall.Str
               (Account.name_of_uid t.k_accounts pcb.Proc.view.View.uid))
      in
      done_charged req result
    | None -> call_file pcb req
  in
  let call_getpid (pcb : Proc.t) req =
    done_charged req (Ok (Syscall.Int pcb.Proc.pid))
  in
  let call_getppid (pcb : Proc.t) req =
    done_charged req (Ok (Syscall.Int pcb.Proc.parent))
  in
  let call_compute _pcb req =
    match req with
    | Syscall.Compute ns ->
      charge t ns;
      Done (Ok Syscall.Unit)
    | _ -> assert false
  in
  let call_exit _pcb req =
    match req with Syscall.Exit code -> Exits code | _ -> assert false
  in
  let call_spawn (pcb : Proc.t) req =
    match req with
    | Syscall.Spawn { path; args } ->
      let result =
        match
          spawn t ~parent:pcb.Proc.pid ~uid:pcb.Proc.view.View.uid
            ~cwd:pcb.Proc.view.View.cwd
            ~env:(View.env_bindings pcb.Proc.view)
            ~path ~args ()
        with
        | Ok pid -> Ok (Syscall.Int pid)
        | Error e -> Error e
      in
      done_charged req result
    | _ -> assert false
  in
  let call_waitpid pcb req =
    match req with
    | Syscall.Waitpid want ->
      (match try_reap t pcb want with
       | Some result -> done_charged req result
       | None -> Blocks)
    | _ -> assert false
  in
  let call_kill (pcb : Proc.t) req =
    match req with
    | Syscall.Kill { pid; signal } ->
      let result =
        if pid = pcb.Proc.pid then Error Errno.EINVAL
        else
          match find_proc t pid with
          | None -> Error Errno.ESRCH
          | Some target ->
            let self_uid = pcb.Proc.view.View.uid in
            if self_uid <> 0 && self_uid <> target.Proc.view.View.uid then
              Error Errno.EPERM
            else
              (match terminate t target ~signal with
               | Ok () -> Ok Syscall.Unit
               | Error e -> Error e)
      in
      done_charged req result
    | _ -> assert false
  in
  let protos = Array.of_list Syscall.prototypes in
  Sysent.table ~count:Syscall.count (fun n ->
      let proto = protos.(n) in
      let call =
        match proto with
        | Syscall.Pipe -> call_pipe_only
        | Syscall.Read _ | Syscall.Write _ | Syscall.Close _ | Syscall.Pread _
        | Syscall.Pwrite _ | Syscall.Lseek _ -> call_pipe_or_file
        | Syscall.Get_user_name -> call_identity
        | Syscall.Getpid -> call_getpid
        | Syscall.Getppid -> call_getppid
        | Syscall.Compute _ -> call_compute
        | Syscall.Exit _ -> call_exit
        | Syscall.Spawn _ -> call_spawn
        | Syscall.Waitpid _ -> call_waitpid
        | Syscall.Kill _ -> call_kill
        | _ -> call_file
      in
      let enforce =
        (* Compute never crosses the trap boundary, so it has no
           pre-check — everything else does. *)
        match proto with Syscall.Compute _ -> None | _ -> Some enforce
      in
      Sysent.entry ~number:n ~name:(Syscall.name proto)
        ~narg:(Syscall.register_args proto) ?enforce call)

let sysent t =
  if Array.length t.sysent_tbl = 0 then begin
    t.sysent_tbl <- build_sysent t;
    (* Intern one counter/histogram handle per syscall number, so the
       dispatch path below indexes an array instead of hashing a
       "syscall.<name>" string on every invocation. *)
    t.sc_counters <-
      Array.map
        (fun (e : (Proc.t, exec_outcome) Sysent.entry) ->
          Metrics.counter t.k_metrics ("syscall." ^ e.Sysent.se_name))
        t.sysent_tbl;
    t.sc_hists <-
      Array.map
        (fun (e : (Proc.t, exec_outcome) Sysent.entry) ->
          Metrics.histogram t.k_metrics ("syscall." ^ e.Sysent.se_name ^ ".ns"))
        t.sysent_tbl
  end;
  t.sysent_tbl

let sysent_summary t =
  Array.to_list
    (Array.map
       (fun (e : (Proc.t, exec_outcome) Sysent.entry) ->
         (e.Sysent.se_number, e.Sysent.se_name, e.Sysent.se_narg,
          Option.is_some e.Sysent.se_enforce))
       (sysent t))

(* Execute a request in full process context: dispatch through the
   sysent table. *)
let exec_process_call t (pcb : Proc.t) req : exec_outcome =
  (Sysent.dispatch (sysent t) req).Sysent.se_call pcb req

let cs2 t =
  t.k_stats.context_switches <- t.k_stats.context_switches + 2;
  charge t (Int64.mul 2L t.k_cost.Cost.context_switch)

let service t (pcb : Proc.t) req (k : Proc.continuation) =
  let deliver result =
    pcb.Proc.run <- Proc.Deliver (k, result);
    enqueue t pcb.Proc.pid
  in
  match req with
  | Syscall.Compute ns ->
    (* Pure user-mode time: no kernel crossing, no trap. *)
    charge t ns;
    deliver (Ok Syscall.Unit)
  | _ ->
    t.k_stats.syscalls <- t.k_stats.syscalls + 1;
    let entry = Sysent.dispatch (sysent t) req in
    let sc = entry.Sysent.se_name in
    let entry_time = now t in
    (* One sysmsg per invocation: completed synchronously below, or
       parked on [Blocks] and completed by the wakeup path. *)
    let msg = Sysent.msg ~pid:pcb.Proc.pid ~at:entry_time entry in
    Metrics.incr t.sc_counters.(entry.Sysent.se_number);
    (* Shadow [deliver] so every completing call records its simulated
       latency and leaves a trace span.  Blocking calls are delivered
       elsewhere (pipe/waitpid wake-ups) and escape this accounting;
       the counter above still saw them. *)
    let deliver result =
      ignore (Sysent.complete msg result);
      let elapsed = Int64.sub (now t) entry_time in
      Metrics.observe_ns t.sc_hists.(entry.Sysent.se_number) elapsed;
      let identity =
        match t.identity_of with
        | Some provider ->
          (match provider pcb.Proc.pid with Some id -> id | None -> "-")
        | None -> "-"
      in
      let verdict =
        match result with Ok _ -> "ok" | Error e -> Errno.to_string e
      in
      Trace.span t.k_trace ~time:entry_time ~pid:pcb.Proc.pid ~identity
        ~syscall:sc ~verdict ~cost_ns:elapsed;
      deliver result
    in
    (match pcb.Proc.tracer with
     | None ->
       let security_verdict =
         match entry.Sysent.se_enforce with
         | None -> Ok ()
         | Some pre -> pre pcb req
       in
       (match security_verdict with
        | Error e -> deliver (Error e)
        | Ok () ->
       match entry.Sysent.se_call pcb req with
        | Done result -> deliver result
        | Blocks ->
          park_sysmsg t msg;
          pcb.Proc.run <- Proc.Waiting { wk = k; wreq = req }
        | Exits code ->
          pcb.Proc.run <- Proc.Running;
          Effect.Deep.discontinue k (Program.Exited code))
     | Some tr ->
       t.k_stats.trapped <- t.k_stats.trapped + 1;
       (* Entry stop: application -> kernel -> supervisor. *)
       cs2 t;
       let action = tr.Trace.on_entry ~pid:pcb.Proc.pid req in
       let outcome =
         match action with
         | Trace.Pass -> exec_process_call t pcb req
         | Trace.Rewrite req' -> exec_process_call t pcb req'
         | Trace.Deny errno ->
           (* Nullified into getpid, result forced to the errno. *)
           let null = Syscall.Getpid in
           (match exec_process_call t pcb null with
            | Done _ -> Done (Error errno)
            | Blocks | Exits _ -> assert false)
       in
       (match outcome with
        | Done result ->
          (* Exit stop: kernel -> supervisor -> application. *)
          cs2 t;
          let final =
            match action with
            | Trace.Deny _ -> result
            | Trace.Pass | Trace.Rewrite _ ->
              (match tr.Trace.on_exit ~pid:pcb.Proc.pid req result with
               | Trace.Keep -> result
               | Trace.Replace r -> r)
          in
          deliver final
        | Blocks ->
          park_sysmsg t msg;
          pcb.Proc.run <- Proc.Waiting { wk = k; wreq = req }
        | Exits code ->
          cs2 t;
          pcb.Proc.run <- Proc.Running;
          Effect.Deep.discontinue k (Program.Exited code)))

(* ------------------------------------------------------------------ *)
(* Scheduler.                                                          *)
(* ------------------------------------------------------------------ *)

let step t pid =
  match find_proc t pid with
  | None -> ()
  | Some pcb ->
    (match pcb.Proc.run with
     | Proc.Not_started (main, args) ->
       pcb.Proc.run <- Proc.Running;
       start_fiber t pcb main args
     | Proc.Deliver (k, result) ->
       pcb.Proc.run <- Proc.Running;
       Effect.Deep.continue k result
     | Proc.Running | Proc.Waiting _ | Proc.Zombie _ | Proc.Reaped _ ->
       (* Stale queue entry. *)
       ());
    (match pcb.Proc.pending with
     | Some (req, k) ->
       pcb.Proc.pending <- None;
       service t pcb req k
     | None -> ())

let rec run t =
  match Queue.take_opt t.runq with
  | None -> ()
  | Some pid ->
    step t pid;
    run t

let status t pid =
  match find_proc t pid with
  | None -> `Unknown
  | Some pcb ->
    (match pcb.Proc.run with
     | Proc.Zombie code | Proc.Reaped code -> `Exited code
     | _ -> `Alive (Proc.state_name pcb))

let exit_code t pid =
  match find_proc t pid with None -> None | Some pcb -> Proc.exit_status pcb

let parent_of t pid =
  match find_proc t pid with
  | Some pcb -> Some pcb.Proc.parent
  | None -> None

let process_view t pid =
  match find_proc t pid with
  | Some pcb when Proc.is_alive pcb -> Some pcb.Proc.view
  | Some _ | None -> None

let set_tracer t pid tracer =
  match find_proc t pid with
  | Some pcb -> pcb.Proc.tracer <- tracer
  | None -> ()

let process_states t =
  Hashtbl.fold (fun pid pcb acc -> (pid, Proc.state_name pcb) :: acc) t.procs []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let set_security_hook t hook = t.security <- hook

let set_identity_provider t provider = t.identity_of <- provider

(* The compiled-policy slot.  The enforcement engine installs a fresh
   program here after each successful compile and clears it on
   rejection; sysent-level consumers (and `idbox stats`) can inspect
   what is currently resident. *)
let set_policy t p = t.k_policy <- p
let policy t = t.k_policy

let with_fresh_programs f =
  let saved = Program.snapshot () in
  Fun.protect ~finally:(fun () -> Program.restore saved) f
