(* A lightweight metrics registry: monotonic counters and log-scale
   latency histograms, designed so the hot path (incr / observe) does
   no allocation — a fixed bucket array indexed by bit shifts, mutable
   int fields, no closures.  The only allocating operations are name
   lookup (get-or-create, amortized by callers that hold on to the
   handle) and the JSON render. *)

(* --- counters -------------------------------------------------------- *)

type counter = {
  c_name : string;
  mutable c_value : int;
}

let counter_name c = c.c_name
let counter_value c = c.c_value

(* Saturating add: a counter that has seen max_int events stays pinned
   there rather than wrapping negative and corrupting rates. *)
let add c n =
  if n > 0 then
    c.c_value <- (if c.c_value > max_int - n then max_int else c.c_value + n)

let incr c = add c 1

(* --- histograms ------------------------------------------------------ *)

(* Bucket [0] holds values <= 1ns; bucket [i>=1] holds [2^i, 2^(i+1)).
   63 buckets cover the whole non-negative int range. *)
let bucket_count = 63

type histogram = {
  h_name : string;
  h_buckets : int array;
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_max : int;
}

let histogram_name h = h.h_name
let count h = h.h_count
let sum_ns h = h.h_sum
let max_ns h = h.h_max

let bucket_index v =
  let rec go v i = if v <= 1 then i else go (v lsr 1) (i + 1) in
  go v 0

let observe h v =
  let v = if v < 0 then 0 else v in
  let i = bucket_index v in
  h.h_buckets.(i) <- h.h_buckets.(i) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- (if h.h_sum > max_int - v then max_int else h.h_sum + v);
  if v > h.h_max then h.h_max <- v

(* Clamp in int64 space before converting: a duration beyond the int
   range must saturate into the top bucket, not wrap negative and land
   silently in bucket 0. *)
let observe_ns h ns =
  let v =
    if Int64.compare ns 0L < 0 then 0
    else if Int64.compare ns (Int64.of_int max_int) > 0 then max_int
    else Int64.to_int ns
  in
  observe h v

(* The representative value of bucket [i]: its geometric centre.  With
   log-scale buckets a percentile is only ever bucket-resolution
   accurate; the centre keeps the error symmetric. *)
let bucket_value i = if i = 0 then 1.0 else float_of_int (1 lsl i) *. 1.5

let percentile h p =
  if h.h_count = 0 then 0.0
  else begin
    let p = if p < 0.0 then 0.0 else if p > 100.0 then 100.0 else p in
    let rank =
      let r = int_of_float (ceil (p /. 100.0 *. float_of_int h.h_count)) in
      if r < 1 then 1 else r
    in
    let rec go i cum =
      if i >= bucket_count then float_of_int h.h_max
      else
        let cum = cum + h.h_buckets.(i) in
        if cum >= rank then bucket_value i else go (i + 1) cum
    in
    go 0 0
  end

let mean_ns h =
  if h.h_count = 0 then 0.0
  else float_of_int h.h_sum /. float_of_int h.h_count

(* --- registry -------------------------------------------------------- *)

type t = {
  m_counters : (string, counter) Hashtbl.t;
  m_histograms : (string, histogram) Hashtbl.t;
  mutable m_lookups : int;
      (* Every by-name registry probe.  Hot paths are expected to hold
         handles; tests pin this to zero across a warm check. *)
}

let create () =
  { m_counters = Hashtbl.create 64; m_histograms = Hashtbl.create 64;
    m_lookups = 0 }

let lookups t = t.m_lookups

let counter t name =
  t.m_lookups <- t.m_lookups + 1;
  match Hashtbl.find_opt t.m_counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; c_value = 0 } in
    Hashtbl.replace t.m_counters name c;
    c

let histogram t name =
  t.m_lookups <- t.m_lookups + 1;
  match Hashtbl.find_opt t.m_histograms name with
  | Some h -> h
  | None ->
    let h =
      { h_name = name; h_buckets = Array.make bucket_count 0; h_count = 0;
        h_sum = 0; h_max = 0 }
    in
    Hashtbl.replace t.m_histograms name h;
    h

let find_counter t name =
  t.m_lookups <- t.m_lookups + 1;
  Hashtbl.find_opt t.m_counters name

let find_histogram t name =
  t.m_lookups <- t.m_lookups + 1;
  Hashtbl.find_opt t.m_histograms name

let counter_value_of t name =
  match find_counter t name with Some c -> c.c_value | None -> 0

let by_name key_of tbl =
  Hashtbl.fold (fun _ v acc -> v :: acc) tbl []
  |> List.sort (fun a b -> String.compare (key_of a) (key_of b))

let counters t = by_name counter_name t.m_counters
let histograms t = by_name histogram_name t.m_histograms

let reset t =
  Hashtbl.reset t.m_counters;
  Hashtbl.reset t.m_histograms

(* --- JSON ------------------------------------------------------------ *)

let escape_json s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let histogram_json h =
  Printf.sprintf
    "{\"count\":%d,\"sum_ns\":%d,\"max_ns\":%d,\"mean_ns\":%.1f,\"p50_ns\":%.1f,\"p95_ns\":%.1f,\"p99_ns\":%.1f}"
    h.h_count h.h_sum h.h_max (mean_ns h) (percentile h 50.0)
    (percentile h 95.0) (percentile h 99.0)

let to_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"counters\":{";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\"%s\":%d" (escape_json c.c_name) c.c_value))
    (counters t);
  Buffer.add_string buf "},\"histograms\":{";
  List.iteri
    (fun i h ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\"%s\":%s" (escape_json h.h_name) (histogram_json h)))
    (histograms t);
  Buffer.add_string buf "}}";
  Buffer.contents buf
