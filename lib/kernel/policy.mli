(** Compiled policy bytecode: the in-kernel decision program.

    A program is a frozen snapshot of the box's reachable ACL universe
    — three collision-free ("perfect") hash tables plus a flat
    two-opcode instruction stream, one wildcard block per ACL —
    evaluated at syscall entry without touching the policy
    interpreter.  Evaluation is a generation compare (done by the
    caller), one or two table probes and a bounded automaton walk,
    charged at {!Cost.t.bytecode_check_ns}.

    The module is policy-agnostic: rights travel as bit positions in
    an integer mask, principals and paths as strings.  The compiler
    lives upstream (in [Idbox.Policy_compile]); this module only
    represents, verifies and runs programs.

    Failure is always closed {e to the interpreter}: any input the
    program cannot answer — an unknown path, a relative or
    [".."]-containing path, a glob that exhausts its fuel, a
    structurally suspect block — evaluates to {!Unknown}, never to
    {!Allow}. *)

type verdict = Allow | Deny | Unknown

type t = {
  p_gen : int;  (** VFS global generation the snapshot was taken at. *)
  p_pool : string array;
  p_code : int array;
  p_acl_off : int array;
  p_dir_seed : int;
  p_dir_key : int array;
  p_dir_val : int array;
  p_path_seed : int;
  p_path_key : int array;
  p_path_val : int array;
  p_ex_seed : int;
  p_ex_key : int array;
  p_ex_acl : int array;
  p_ex_mask : int array;
}
(** The program layout is exposed so the compiler can build programs
    and tests can tamper with them; everything else should treat [t]
    as opaque and go through {!eval_object} / {!eval_in_dir}. *)

val generation : t -> int
(** The generation the program is valid for: the caller compares this
    against the live VFS generation before every evaluation and treats
    a mismatch as {e stale} (fall back, recompile off the hot path). *)

(** {1 Opcodes and bounds} *)

val op_ret : int
val op_wild : int
val instr_width : int
(** Ints per instruction: [op; operand; operand]. *)

val max_pool : int
val max_string : int
val max_pattern : int
val max_code : int
val max_table : int
val max_block : int
val glob_fuel : int

(** {1 Hashing}

    Seeded FNV-1a, shared with the compiler so seed trials there place
    keys exactly where probes here look. *)

val hash : seed:int -> string -> int
val dir_slot : seed:int -> len:int -> string -> int
val path_slot : seed:int -> len:int -> string -> int
val ex_slot : seed:int -> len:int -> acl:int -> string -> int

(** {1 Evaluation} *)

val eval_object :
  t -> principal:string -> path:string -> right_bit:int -> verdict
(** The verdict for one object check.  [path] must be the absolute
    normalized path as presented to the engine; the program answers
    from its path table (existing objects, symlinks pre-resolved to
    their governing ACL at compile time) or, for paths absent from the
    snapshot — which at an unchanged generation proves the object does
    not exist — from the lexical parent's directory table entry. *)

val eval_in_dir : t -> principal:string -> dir:string -> right_bit:int -> verdict
(** The verdict for a check directly against a directory's ACL. *)

type glob_result = Matched | Unmatched | Out_of_fuel

val glob : fuel:int -> string -> string -> glob_result
(** The fuel-bounded glob ['*']/['?'] matcher the WILD opcode runs.
    Exposed for the property tests. *)

(** {1 Verification} *)

val check_program : t -> (unit, string) result
(** The structural half of the compile-time verifier: sizes within
    budget, pool references in range, every ACL block RET-terminated
    within {!max_block} instructions, every table slot empty or placed
    exactly where its key hashes (the perfect-hash property).  With
    the fuel-bounded glob this bounds every loop an evaluation can
    run: the termination proof.  Semantic agreement with the
    interpreter is checked separately by the compiler's seeded
    sample. *)

val size : t -> int
(** Total table + code footprint in words, for size accounting. *)

val stats : t -> string
(** One-line occupancy summary for diagnostics. *)
