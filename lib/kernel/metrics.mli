(** A lightweight metrics registry: monotonic counters and log-scale
    latency histograms with cheap percentile estimates.

    The hot path ({!incr}, {!add}, {!observe}) allocates nothing — a
    handle obtained once from {!counter} or {!histogram} updates
    mutable int fields and a fixed bucket array.  Counters saturate at
    [max_int] instead of wrapping.  Histograms bucket values by
    powers of two, so percentiles are bucket-resolution estimates:
    bucket 0 holds values [<= 1]; bucket [i >= 1] holds
    [[2^i, 2^(i+1))], reported as the geometric centre [1.5 * 2^i]. *)

type t
(** A registry: a named set of counters and histograms. *)

val create : unit -> t

(** {1 Counters} *)

type counter

val counter : t -> string -> counter
(** Get or create the counter named [name].  Hold on to the handle in
    hot code; lookup hashes the name. *)

val incr : counter -> unit
val add : counter -> int -> unit
(** [add c n] adds [n] (ignored when [n <= 0]); saturates at [max_int]. *)

val counter_name : counter -> string
val counter_value : counter -> int

(** {1 Histograms} *)

type histogram

val histogram : t -> string -> histogram
(** Get or create the histogram named [name]. *)

val observe : histogram -> int -> unit
(** Record one sample (negative samples clamp to 0). *)

val observe_ns : histogram -> int64 -> unit
(** {!observe} for simulated-clock durations.  Clamps to
    [[0, max_int]] in int64 space, so a 0-duration sample lands in
    bucket 0 and a duration beyond the int range saturates into the
    top bucket instead of wrapping negative. *)

val histogram_name : histogram -> string
val count : histogram -> int
val sum_ns : histogram -> int
val max_ns : histogram -> int
val mean_ns : histogram -> float

val percentile : histogram -> float -> float
(** [percentile h p] for [p] in [[0, 100]]: the representative value of
    the first bucket whose cumulative count reaches rank
    [ceil (p/100 * count)].  [0.] on an empty histogram. *)

(** {1 Introspection} *)

val find_counter : t -> string -> counter option
val find_histogram : t -> string -> histogram option

val counter_value_of : t -> string -> int
(** The counter's value, or [0] when it was never created. *)

val lookups : t -> int
(** How many by-name registry probes ({!counter}, {!histogram},
    {!find_counter}, {!find_histogram}) have run since {!create}.
    Hot paths must hold handles instead of probing; tests assert this
    stays flat across a warm check. *)

val counters : t -> counter list
(** All counters, sorted by name (deterministic output order). *)

val histograms : t -> histogram list
(** All histograms, sorted by name. *)

val reset : t -> unit
(** Drop every counter and histogram.  Outstanding handles keep
    working but are no longer reachable from the registry. *)

(** {1 Export} *)

val escape_json : string -> string
(** JSON string-body escaping (quotes, backslashes, control chars). *)

val histogram_json : histogram -> string
(** One histogram as a JSON object:
    [{"count":..,"sum_ns":..,"max_ns":..,"mean_ns":..,"p50_ns":..,
    "p95_ns":..,"p99_ns":..}]. *)

val to_json : t -> string
(** The whole registry:
    [{"counters":{name:value,..},"histograms":{name:{..},..}}], keys
    sorted by name. *)
