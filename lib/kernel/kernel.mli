(** The simulated kernel: processes, system call service, tracing, and
    the simulated clock.

    One [Kernel.t] models one host.  Host-level code (tests, servers,
    interposition agents) creates processes with {!spawn} or
    {!spawn_main}, then calls {!run} to drive the machine to quiescence.
    Simulated programs interact only through the {!Program.Sys} effect,
    which the scheduler services — passing traced processes' calls
    through their {!Trace.handler} first, and charging every action to
    the clock according to the {!Cost} model. *)

type t

type stats = {
  mutable syscalls : int;  (** System calls serviced (excludes [Compute]). *)
  mutable trapped : int;  (** Calls that stopped at a tracer. *)
  mutable context_switches : int;  (** Switches charged for trapping. *)
  mutable delegated : int;  (** Supervisor-made calls ({!delegate}). *)
  mutable peek_poke_words : int;  (** Words moved via PEEK/POKE. *)
  mutable channel_bytes : int;  (** Bytes copied through the I/O channel. *)
  mutable spawns : int;
}

val create : ?cost:Cost.t -> ?accounts:Account.t -> ?clock:Clock.t -> unit -> t
(** A fresh host: empty process table, clock at 0, and a filesystem
    populated with [/etc/passwd] (rendered from the account database),
    [/tmp] (world-writable), [/home], and [/bin].  Pass a shared [clock]
    to place several hosts in one simulated world (distributed
    experiments measure one coherent timeline). *)

val clock : t -> Clock.t
val now : t -> int64
val fs : t -> Idbox_vfs.Fs.t
val accounts : t -> Account.t
val cost : t -> Cost.t
val stats : t -> stats

val metrics : t -> Metrics.t
(** The kernel-wide metrics registry.  The kernel itself records
    [syscall.<name>] counters and [syscall.<name>.ns] simulated-latency
    histograms for every serviced call; supervisor layers (enforcement,
    boxes, the Chirp server) add their own counters here so one
    registry describes the whole stack. *)

val trace_ring : t -> Trace.ring
(** The bounded ring of structured trace spans, one per completed
    system call.  Attach a sink ({!Trace.add_sink}) to stream spans. *)

val add_user : t -> string -> (Account.entry, string) result
(** The [useradd -m] of the simulation: create the account, its home
    directory (owner-owned, mode 0755), and refresh [/etc/passwd]. *)

val refresh_passwd : t -> unit
(** Re-render [/etc/passwd] from the account database (schemes that add
    accounts at runtime call this, as [useradd] would). *)

val charge : t -> int64 -> unit
(** Advance the clock: used by supervisors for work the kernel cannot
    see (ACL evaluation, memcpy into the channel). *)

val note_peek_poke : t -> words:int -> unit
(** Charge and account PEEK/POKE data movement. *)

val note_channel_copy : t -> bytes:int -> unit
(** Charge and account a supervisor-side copy through the I/O channel. *)

(** {1 Supervisor-side execution} *)

val make_view : t -> uid:int -> ?cwd:string -> unit -> View.t
(** A host-level execution context (the supervisor's own uid, cwd and
    descriptor table). *)

val execute : t -> View.t -> Syscall.request -> Syscall.result
(** Execute a file-level system call directly against a view, charging
    its direct cost.  Process-management calls ([spawn], [waitpid],
    [exit], [kill], [getpid]) return [ENOSYS] here — supervisors use the
    host-level API below for those. *)

val delegate : t -> View.t -> Syscall.request -> Syscall.result
(** {!execute}, plus the two context switches a userspace supervisor
    pays to enter and leave the kernel for its own call. *)

(** {1 Processes} *)

val spawn :
  t ->
  ?parent:int ->
  ?uid:int ->
  ?cwd:string ->
  ?env:(string * string) list ->
  ?tracer:Trace.handler ->
  path:string ->
  args:string list ->
  unit ->
  (int, Idbox_vfs.Errno.t) result
(** Create a process from an executable file: the file must resolve, be
    regular, carry execute permission for [uid], and contain a
    {!Program.marker} naming a registered program.  The tracer (explicit,
    or inherited from a traced parent) is installed before the first
    instruction runs. *)

val spawn_main :
  t ->
  ?parent:int ->
  ?uid:int ->
  ?cwd:string ->
  ?env:(string * string) list ->
  ?tracer:Trace.handler ->
  main:Program.main ->
  args:string list ->
  unit ->
  int
(** Create a process directly from a closure, bypassing the filesystem
    (used by tests and by the identity box to start a visitor's shell). *)

val run : t -> unit
(** Drive the machine until no process is runnable.  Processes blocked in
    [waitpid] whose children are all gone receive [ECHILD] rather than
    deadlocking; a genuinely stuck configuration simply leaves the
    waiters in place (inspect with {!process_states}). *)

val status : t -> int -> [ `Alive of string | `Exited of int | `Unknown ]
(** Scheduler state of a pid: [`Alive] carries the state name, [`Exited]
    the exit code of a zombie or reaped process. *)

val exit_code : t -> int -> int option
(** The exit status, once a process has exited. *)

val kill : t -> pid:int -> signal:int -> (unit, Idbox_vfs.Errno.t) result
(** Host-level kill (used by supervisors enforcing signal policy):
    terminates the target with status [128 + signal]. *)

val parent_of : t -> int -> int option
(** The parent pid of a known process. *)

val process_view : t -> int -> View.t option
(** The view of a live process — supervisors use this to inject the I/O
    channel descriptor into their tracees. *)

val set_tracer : t -> int -> Trace.handler option -> unit
(** Attach or detach a tracer (attach-at-spawn is the common path). *)

val process_states : t -> (int * string) list
(** [(pid, state)] pairs, sorted by pid; for diagnostics and tests. *)

(** {1 In-kernel enforcement hooks}

    The paper's conclusion proposes moving identity boxing into the
    operating system proper (Figure 6).  These two hooks are that
    proposal: an LSM-style security module consulted before every
    (untraced) system call, and an identity provider backing
    [get_user_name] — both running at kernel cost, with no context
    switches and no data copies.  The Fig. 6 ablation compares a box
    built on these hooks against the ptrace-style agent. *)

type security_hook = pid:int -> View.t -> Syscall.request -> (unit, Idbox_vfs.Errno.t) result
(** Return [Error e] to deny the call with errno [e] before it executes.
    Consulted only for untraced processes (traced ones answer to their
    supervisor instead). *)

val set_security_hook : t -> security_hook option -> unit

val set_identity_provider : t -> (int -> string option) option -> unit
(** When set, [get_user_name] for pid [p] returns the provider's answer
    (falling back to the account name when the provider returns [None]). *)

val set_policy : t -> Policy.t option -> unit
(** Install (or clear) the compiled-policy bytecode program the
    security hook's enforcement engine consults at syscall entry.
    Owned by the engine: it installs after each successful compile +
    verify, and clears on verifier rejection (fail closed to the
    interpreter). *)

val policy : t -> Policy.t option
(** The currently resident program, if any — for [idbox stats] and
    tests. *)

(** {1 Sysent dispatch}

    System calls dispatch through a per-kernel {!Sysent} table: one
    entry per call carrying its handler, register arity, and the
    enforcement pre-check ([None] only for [compute], which never
    traps).  Each invocation is a sysmsg that completes synchronously
    or parks on a blocking call ([kernel.sysmsg.parked]) until a
    wakeup path completes it ([kernel.sysmsg.completed]) — exactly
    once; a second completion attempt is discarded and counted
    ([kernel.sysmsg.late]).  A parked invocation interrupted by a kill
    completes as [EINTR]. *)

val sysent_summary : t -> (int * string * int * bool) list
(** The dispatch table as [(number, name, narg, has_enforce)] rows in
    table order — for tests and diagnostics. *)

val parked_count : t -> int
(** How many invocations are currently parked on blocking calls. *)

val with_fresh_programs : (unit -> 'a) -> 'a
(** Run a thunk with the (global) program registry saved and restored —
    test isolation. *)
