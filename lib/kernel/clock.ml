type t = { mutable time : int64 }

let create () = { time = 0L }

let now t = t.time

let advance t d =
  if Int64.compare d 0L < 0 then invalid_arg "Clock.advance: negative duration";
  t.time <- Int64.add t.time d

let advance_to t deadline =
  if Int64.compare deadline t.time > 0 then t.time <- deadline

let to_seconds ns = Int64.to_float ns /. 1e9

let to_micros ns = Int64.to_float ns /. 1e3

let of_micros us = Int64.of_float (us *. 1e3)

let reading t () = t.time

let pp_duration ppf ns =
  let f = Int64.to_float ns in
  if f < 1e3 then Format.fprintf ppf "%.0f ns" f
  else if f < 1e6 then Format.fprintf ppf "%.2f us" (f /. 1e3)
  else if f < 1e9 then Format.fprintf ppf "%.2f ms" (f /. 1e6)
  else Format.fprintf ppf "%.2f s" (f /. 1e9)
