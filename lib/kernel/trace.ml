type entry_action =
  | Pass
  | Rewrite of Syscall.request
  | Deny of Idbox_vfs.Errno.t

type exit_action =
  | Keep
  | Replace of Syscall.result

type event =
  | Spawned of { pid : int; parent : int }
  | Exited of { pid : int; code : int }

type handler = {
  on_entry : pid:int -> Syscall.request -> entry_action;
  on_exit : pid:int -> Syscall.request -> Syscall.result -> exit_action;
  on_event : event -> unit;
}

let pass_through =
  {
    on_entry = (fun ~pid:_ _ -> Pass);
    on_exit = (fun ~pid:_ _ _ -> Keep);
    on_event = (fun _ -> ());
  }

(* --- structured trace spans ------------------------------------------ *)

type span = {
  sp_seq : int;
  sp_time : int64;
  sp_pid : int;
  sp_identity : string;
  sp_syscall : string;
  sp_verdict : string;
  sp_cost_ns : int64;
}

type sink = span -> unit

(* A fixed-capacity ring.  The span array is allocated lazily on the
   first emit, so a kernel that never traces pays one word per field
   here and nothing else.  [head] is the index of the next write; once
   [total >= capacity] the oldest span lives at [head]. *)
type ring = {
  capacity : int;
  mutable spans : span array;
  mutable head : int;
  mutable total : int;
  mutable sinks : sink list;
}

let default_capacity = 1024

let ring ?(capacity = default_capacity) () =
  let capacity = if capacity < 1 then 1 else capacity in
  { capacity; spans = [||]; head = 0; total = 0; sinks = [] }

let capacity r = r.capacity
let total r = r.total
let length r = if r.total < r.capacity then r.total else r.capacity
let dropped r = r.total - length r

let add_sink r sink = r.sinks <- r.sinks @ [ sink ]
let clear_sinks r = r.sinks <- []

let emit r span =
  if Array.length r.spans = 0 then
    r.spans <- Array.make r.capacity span
  else r.spans.(r.head) <- span;
  r.head <- (r.head + 1) mod r.capacity;
  r.total <- r.total + 1;
  List.iter (fun sink -> sink span) r.sinks

let span r ~time ~pid ~identity ~syscall ~verdict ~cost_ns =
  emit r
    {
      sp_seq = r.total;
      sp_time = time;
      sp_pid = pid;
      sp_identity = identity;
      sp_syscall = syscall;
      sp_verdict = verdict;
      sp_cost_ns = cost_ns;
    }

(* Oldest-first iteration.  When the ring has wrapped, the oldest
   retained span sits at [head]; before wrap, at 0. *)
let iter r f =
  let n = length r in
  let start = if r.total < r.capacity then 0 else r.head in
  for i = 0 to n - 1 do
    f r.spans.((start + i) mod r.capacity)
  done

let to_list r =
  let acc = ref [] in
  iter r (fun s -> acc := s :: !acc);
  List.rev !acc

let reset r =
  r.head <- 0;
  r.total <- 0;
  r.spans <- [||]

let span_json s =
  Printf.sprintf
    "{\"seq\":%d,\"time_ns\":%Ld,\"pid\":%d,\"identity\":\"%s\",\"syscall\":\"%s\",\"verdict\":\"%s\",\"cost_ns\":%Ld}"
    s.sp_seq s.sp_time s.sp_pid
    (Metrics.escape_json s.sp_identity)
    (Metrics.escape_json s.sp_syscall)
    (Metrics.escape_json s.sp_verdict)
    s.sp_cost_ns

let to_json r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "{\"capacity\":%d,\"total\":%d,\"dropped\":%d,\"spans\":["
       r.capacity r.total (dropped r));
  let first = ref true in
  iter r (fun s ->
      if !first then first := false else Buffer.add_char buf ',';
      Buffer.add_string buf (span_json s));
  Buffer.add_string buf "]}";
  Buffer.contents buf

let pp_span ppf s =
  Format.fprintf ppf "@[<h>#%d t=%Ldns pid=%d %s %s -> %s (+%Ldns)@]" s.sp_seq
    s.sp_time s.sp_pid s.sp_identity s.sp_syscall s.sp_verdict s.sp_cost_ns
