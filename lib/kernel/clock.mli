(** The simulated nanosecond clock.

    Every cost in the simulation — system call service time, context
    switches, data copies, user-mode computation — advances this clock.
    Experiment results are read from it, which is what makes measured
    overheads deterministic and reproducible. *)

type t

val create : unit -> t
(** A clock at time 0. *)

val now : t -> int64
(** Current simulated time in nanoseconds. *)

val advance : t -> int64 -> unit
(** Add a (non-negative) duration.  Raises [Invalid_argument] on a
    negative duration: costs can never be negative. *)

val advance_to : t -> int64 -> unit
(** Move the clock forward to an absolute time.  A deadline already in
    the past is a no-op — time never moves backwards — which is what an
    event loop wants when it dequeues an event scheduled before other
    work already advanced the clock past it. *)

val to_seconds : int64 -> float
(** Convert a nanosecond duration to seconds. *)

val to_micros : int64 -> float
(** Convert a nanosecond duration to microseconds. *)

val of_micros : float -> int64
(** Convert microseconds to nanoseconds (rounded). *)

val reading : t -> (unit -> int64)
(** [reading t] is a closure returning {!now}; handed to subsystems such
    as the filesystem that only need to read time. *)

val pp_duration : Format.formatter -> int64 -> unit
(** Render a duration with an adaptive unit (ns, µs, ms, s). *)
