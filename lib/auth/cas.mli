(** A community authorization service (paper §4: "identity boxing allows
    a system to have complex admission policies, such as ... reference
    to a community authorization service, without the difficulty of
    reconciling that policy to the existing user database").

    A CAS maintains community membership lists and issues short-lived
    signed assertions that a principal belongs to a community.  A
    resource (e.g. a Chirp server) that trusts a CAS can admit "members
    of community X" without any local configuration per user — and the
    admitted principal keeps their own global name, so ACLs, auditing,
    and sharing still see the individual, not the community. *)

type t

type assertion = {
  as_holder : string;  (** The member's canonical principal name. *)
  as_community : string;
  as_issued : int64;
  as_expires : int64;
  as_stamp : string;  (** Keyed digest standing in for the CAS signature. *)
}

val create : name:string -> t
val name : t -> string

val add_member : t -> community:string -> Idbox_identity.Principal.t -> unit
val remove_member : t -> community:string -> Idbox_identity.Principal.t -> unit
val is_member : t -> community:string -> Idbox_identity.Principal.t -> bool
val communities : t -> string list
(** Sorted. *)

val members : t -> community:string -> string list
(** Canonical principal names, sorted. *)

val issue :
  t -> community:string -> holder:Idbox_identity.Principal.t -> now:int64 ->
  (assertion, string) result
(** A one-hour assertion of membership; errors for non-members. *)

val verify : t -> assertion -> now:int64 -> bool
(** Stamp integrity, expiry, and — because membership can be revoked
    faster than assertions expire — current membership.  Expiry follows
    the {!Expiry} rule: the assertion is valid while
    [now <= as_expires], boundary instant inclusive. *)

val admit :
  t -> communities:string list -> now:int64 ->
  Idbox_identity.Principal.t -> (unit, string) result
(** The admission-policy hook for {!Negotiate.acceptor}: succeed iff the
    principal currently belongs to one of the listed communities. *)
