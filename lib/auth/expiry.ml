(* Inclusive boundary: a credential stamped "expires = T" is honored at
   exactly T and refused at T+1.  Shared by every timed credential so
   the rule cannot drift between kinds. *)
let valid_at ~now ~expires = Int64.compare now expires <= 0
