(** A simulated Kerberos realm: password login yields a ticket; services
    in the realm verify tickets by keyed digest.  Establishes
    [kerberos:user\@realm] principals. *)

type t
(** A realm (its KDC and user database). *)

type ticket = {
  user : string;
  realm : string;
  issued_at : int64;  (** Simulated nanoseconds. *)
  expires_at : int64;
  stamp : string;  (** Keyed digest standing in for the KDC encryption. *)
}

val create : realm:string -> t

val realm : t -> string

val add_user : t -> string -> password:string -> unit

val login :
  t -> user:string -> password:string -> now:int64 ->
  (ticket, string) result
(** Obtain a ticket (10-hour lifetime, like the classic default). *)

val verify : t -> ticket -> now:int64 -> bool
(** Stamp integrity and expiry.  Expiry follows the {!Expiry} rule: the
    ticket is valid while [now <= expires_at], boundary instant
    inclusive. *)

val ticket_principal : ticket -> Idbox_identity.Principal.t
(** [kerberos:user\@realm]. *)
