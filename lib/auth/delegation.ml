module Rights = Idbox_acl.Rights

type token = {
  dg_delegator : string;
  dg_delegatee : string;
  dg_rights : Rights.t;
  dg_prefix : string;
  dg_issued : int64;
  dg_expires : int64;
  dg_hops : int;
  dg_epoch : int;
  dg_nonce : string;
  dg_issuer : string;
  dg_stamp : string;
}

type chain = token list

type failure =
  | F_empty
  | F_expired
  | F_forged
  | F_broken
  | F_cycle
  | F_over_hop
  | F_revoked
  | F_widened

let failure_name = function
  | F_empty -> "empty"
  | F_expired -> "expired"
  | F_forged -> "forged"
  | F_broken -> "broken"
  | F_cycle -> "cycle"
  | F_over_hop -> "over_hop"
  | F_revoked -> "revoked"
  | F_widened -> "widened"

let failure_message = function
  | F_empty -> "delegation chain is empty"
  | F_expired -> "delegation token expired"
  | F_forged -> "delegation token forged or untrusted issuer"
  | F_broken -> "delegation chain linkage broken"
  | F_cycle -> "delegation chain contains a cycle"
  | F_over_hop -> "delegation chain exceeds a hop limit"
  | F_revoked -> "delegation token revoked"
  | F_widened -> "delegation scope widens along the chain"

type summary = {
  sum_root : string;
  sum_holder : string;
  sum_grant : Rights.t;
  sum_prefix : string;
  sum_expires : int64;
  sum_hops : int;
}

module Revocations = struct
  type t = {
    rv_epochs : (string, int) Hashtbl.t;
    mutable rv_gen : int;
  }

  let create () = { rv_epochs = Hashtbl.create 8; rv_gen = 0 }

  let epoch t delegator =
    match Hashtbl.find_opt t.rv_epochs delegator with
    | Some e -> e
    | None -> 0

  let revoke t delegator =
    let e = epoch t delegator + 1 in
    Hashtbl.replace t.rv_epochs delegator e;
    t.rv_gen <- t.rv_gen + 1;
    e

  let merge t entries =
    let changed = ref false in
    List.iter
      (fun (delegator, e) ->
        if e > epoch t delegator then begin
          Hashtbl.replace t.rv_epochs delegator e;
          changed := true
        end)
      entries;
    if !changed then t.rv_gen <- t.rv_gen + 1;
    !changed

  let entries t =
    Hashtbl.fold
      (fun d e acc -> if e > 0 then (d, e) :: acc else acc)
      t.rv_epochs []
    |> List.sort compare

  let generation t = t.rv_gen
end

(* The attested payload covers every field: tampering with any of them
   — including the epoch, so a revoked token cannot be "un-revoked" by
   rewriting it — breaks the stamp. *)
let payload ~delegator ~delegatee ~rights ~prefix ~issued ~expires ~hops ~epoch
    ~nonce =
  Printf.sprintf "delegate|%s|%s|%s|%s|%Ld|%Ld|%d|%d|%s" delegator delegatee
    (Rights.to_string rights)
    prefix issued expires hops epoch nonce

let mint ca ~delegator ~delegatee ~rights ~prefix ~now ~ttl_ns ~hops
    ?(epoch = 0) () =
  let expires = Int64.add now ttl_ns in
  let nonce =
    (* Deterministic per mint: the CA's serial counter, attested so a
       nonce cannot be grafted onto a different CA's chain. *)
    Ca.attest ca (Printf.sprintf "nonce|%d|%s|%s" (Ca.fresh_serial ca) delegator delegatee)
  in
  let body =
    payload ~delegator ~delegatee ~rights ~prefix ~issued:now ~expires ~hops
      ~epoch ~nonce
  in
  {
    dg_delegator = delegator;
    dg_delegatee = delegatee;
    dg_rights = rights;
    dg_prefix = prefix;
    dg_issued = now;
    dg_expires = expires;
    dg_hops = hops;
    dg_epoch = epoch;
    dg_nonce = nonce;
    dg_issuer = Ca.name ca;
    dg_stamp = Ca.attest ca body;
  }

let verify_token ~trusted tok =
  List.exists
    (fun ca ->
      String.equal (Ca.name ca) tok.dg_issuer
      && String.equal tok.dg_stamp
           (Ca.attest ca
              (payload ~delegator:tok.dg_delegator ~delegatee:tok.dg_delegatee
                 ~rights:tok.dg_rights ~prefix:tok.dg_prefix
                 ~issued:tok.dg_issued ~expires:tok.dg_expires
                 ~hops:tok.dg_hops ~epoch:tok.dg_epoch ~nonce:tok.dg_nonce)))
    trusted

let scope_contains ~prefix path =
  String.equal prefix "/" || String.equal prefix path
  || (String.length path > String.length prefix
      && String.sub path 0 (String.length prefix) = prefix
      && path.[String.length prefix] = '/')

(* Checked in a fixed order so a chain with several defects reports the
   same failure every run — chaos replays depend on it. *)
let validate ~trusted ~revocations ~now ~holder chain =
  let n = List.length chain in
  if n = 0 then Error F_empty
  else
    let rec over_hop i = function
      | [] -> false
      | tok :: rest -> n - i > tok.dg_hops || over_hop (i + 1) rest
    in
    if over_hop 0 chain then Error F_over_hop
    else if not (List.for_all (verify_token ~trusted) chain) then Error F_forged
    else if
      not
        (List.for_all
           (fun tok -> Expiry.valid_at ~now ~expires:tok.dg_expires)
           chain)
    then Error F_expired
    else
      let rec linked = function
        | a :: (b :: _ as rest) ->
          String.equal a.dg_delegatee b.dg_delegator && linked rest
        | [ last ] -> String.equal last.dg_delegatee holder
        | [] -> true
      in
      if not (linked chain) then Error F_broken
      else
        let principals =
          (List.hd chain).dg_delegator :: List.map (fun t -> t.dg_delegatee) chain
        in
        if
          List.length (List.sort_uniq String.compare principals)
          <> List.length principals
        then Error F_cycle
        else
          let rec nested = function
            | a :: (b :: _ as rest) ->
              scope_contains ~prefix:a.dg_prefix b.dg_prefix && nested rest
            | _ -> true
          in
          if not (nested chain) then Error F_widened
          else if
            List.exists
              (fun tok ->
                tok.dg_epoch < Revocations.epoch revocations tok.dg_delegator)
              chain
          then Error F_revoked
          else
            let last = List.nth chain (n - 1) in
            Ok
              {
                sum_root = (List.hd chain).dg_delegator;
                sum_holder = holder;
                sum_grant =
                  List.fold_left
                    (fun acc tok -> Rights.inter acc tok.dg_rights)
                    Rights.full chain;
                sum_prefix = last.dg_prefix;
                sum_expires =
                  List.fold_left
                    (fun acc tok -> Int64.min acc tok.dg_expires)
                    Int64.max_int chain;
                sum_hops = n;
              }

let chain_key ~holder chain =
  String.concat "\x00" (holder :: List.map (fun t -> t.dg_stamp) chain)

let token_fields tok =
  [
    tok.dg_delegator;
    tok.dg_delegatee;
    Rights.to_string tok.dg_rights;
    tok.dg_prefix;
    Int64.to_string tok.dg_issued;
    Int64.to_string tok.dg_expires;
    string_of_int tok.dg_hops;
    string_of_int tok.dg_epoch;
    tok.dg_nonce;
    tok.dg_issuer;
    tok.dg_stamp;
  ]

let token_of_fields = function
  | [
      delegator; delegatee; rights; prefix; issued; expires; hops; epoch;
      nonce; issuer; stamp;
    ] ->
    (match
       ( Rights.of_string rights,
         Int64.of_string_opt issued,
         Int64.of_string_opt expires,
         int_of_string_opt hops,
         int_of_string_opt epoch )
     with
     | Ok dg_rights, Some dg_issued, Some dg_expires, Some dg_hops, Some dg_epoch
       ->
       Ok
         {
           dg_delegator = delegator;
           dg_delegatee = delegatee;
           dg_rights;
           dg_prefix = prefix;
           dg_issued;
           dg_expires;
           dg_hops;
           dg_epoch;
           dg_nonce = nonce;
           dg_issuer = issuer;
           dg_stamp = stamp;
         }
     | Error e, _, _, _, _ -> Error ("bad delegation rights: " ^ e)
     | _ -> Error "bad delegation token numbers")
  | _ -> Error "bad delegation token shape"
