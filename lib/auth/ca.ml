module Subject = Idbox_identity.Subject
module Principal = Idbox_identity.Principal

type t = {
  ca_name : string;
  secret : string;
  mutable next_serial : int;
  revoked : (int, unit) Hashtbl.t;
}

type certificate = {
  subject : Subject.t;
  issuer : string;
  serial : int;
  signature : string;
}

let counter = ref 0

let create ~name =
  incr counter;
  {
    ca_name = name;
    secret = Digest.string (Printf.sprintf "ca-secret-%s-%d" name !counter);
    next_serial = 1;
    revoked = Hashtbl.create 4;
  }

let name t = t.ca_name

let sign t subject serial =
  Digest.string
    (Printf.sprintf "%s|%s|%d|%s" t.secret (Subject.to_string subject) serial
       t.ca_name)

(* A keyed digest over an arbitrary payload, bound to this CA's secret:
   the signing primitive delegation tokens (and any future CA-mediated
   artifact) reuse without ever seeing the secret itself. *)
let attest t payload =
  Digest.to_hex (Digest.string (Printf.sprintf "%s|attest|%s" t.secret payload))

(* A fresh serial from the CA's counter, for artifacts (delegation
   nonces) that need a unique, CA-scoped identifier. *)
let fresh_serial t =
  let serial = t.next_serial in
  t.next_serial <- serial + 1;
  serial

let issue t subject =
  let serial = t.next_serial in
  t.next_serial <- serial + 1;
  { subject; issuer = t.ca_name; serial; signature = sign t subject serial }

let verify t cert =
  String.equal cert.issuer t.ca_name
  && String.equal cert.signature (sign t cert.subject cert.serial)

let revoke t cert = Hashtbl.replace t.revoked cert.serial ()

let is_revoked t cert = Hashtbl.mem t.revoked cert.serial

let certificate_principal cert =
  Principal.make ~scheme:Principal.Globus (Subject.to_string cert.subject)
