(** A simulated certificate authority.

    Stands in for the GSI public-key infrastructure: the CA issues
    certificates binding a subject DN to a holder secret, and verifiers
    that trust the CA can check a certificate's signature.  Signatures
    are keyed digests rather than real public-key cryptography — the
    identity-boxing experiments consume only the {e authenticated
    principal name}, so the substitution preserves every behaviour that
    matters (and failure paths: forged or tampered certificates are
    rejected). *)

type t

type certificate = {
  subject : Idbox_identity.Subject.t;
  issuer : string;  (** The CA's name. *)
  serial : int;
  signature : string;
}

val create : name:string -> t
(** A fresh CA with a private signing secret. *)

val name : t -> string

val issue : t -> Idbox_identity.Subject.t -> certificate
(** Sign a certificate for a subject. *)

val verify : t -> certificate -> bool
(** Check issuer match and signature integrity. *)

val attest : t -> string -> string
(** A keyed digest over [payload] under this CA's secret — the signing
    primitive behind {!Delegation} tokens.  Anyone holding the CA can
    recompute and compare; nobody without the secret can forge.
    Certificates themselves carry no expiry: where an attested artifact
    does (delegation tokens), the {!Expiry} rule decides the boundary. *)

val fresh_serial : t -> int
(** The next value of the CA's serial counter (also advanced by
    {!issue}); used to mint unique chain nonces. *)

val revoke : t -> certificate -> unit
(** Add the certificate's serial to the CA's revocation list. *)

val is_revoked : t -> certificate -> bool

val certificate_principal : certificate -> Idbox_identity.Principal.t
(** The [globus:<subject>] principal a valid certificate establishes. *)
