(** Certified delegation chains: signed, attenuated, auditable
    capability hand-offs (Schreiner et al.'s mediated definite
    delegation, PAPERS.md).

    A delegator A mints a {!token} naming a delegatee B, a rights mask,
    a path-prefix scope, an expiry, a hop limit and a chain nonce; the
    token is attested by the toy CA ({!Ca.attest}), so any verifier
    trusting the CA can check it without contacting A.  B may extend
    the chain toward C with a second token, and so on.  A verifier is
    handed the whole chain plus the authenticated holder and computes
    one {!summary}: the {e root} principal the work runs as, and a
    grant that is the {b intersection} of every hop's rights mask under
    the {b narrowest} hop's path prefix — attenuation is monotone by
    construction, and every structural defect (broken link, forged
    stamp, cycle, over-length, widened scope, expired or revoked hop)
    fails the whole chain closed.

    Expiry follows the {!Expiry} rule: a token is valid while
    [now <= dg_expires], boundary instant inclusive — the same rule as
    {!Cas.verify} and {!Kerberos.verify}.

    Revocation is by per-delegator {e epoch}: each token records the
    delegator's revocation epoch at mint time, and a verifier whose
    {!Revocations} store has since seen a higher epoch for that
    delegator rejects the hop.  Epochs only grow and merge by max, so
    replicas converge by gossip regardless of delivery order. *)

type token = {
  dg_delegator : string;  (** Principal string, e.g. [globus:/O=Grid/CN=Alice]. *)
  dg_delegatee : string;
  dg_rights : Idbox_acl.Rights.t;  (** This hop's grant mask. *)
  dg_prefix : string;  (** Path-prefix scope (wire path, normalized). *)
  dg_issued : int64;
  dg_expires : int64;
  dg_hops : int;
      (** Max chain length at or below this token: a token with
          [dg_hops = 1] cannot be extended further. *)
  dg_epoch : int;  (** The delegator's revocation epoch at mint time. *)
  dg_nonce : string;  (** Unique chain-link identifier. *)
  dg_issuer : string;  (** Name of the attesting CA. *)
  dg_stamp : string;  (** Keyed digest over every field above. *)
}

type chain = token list
(** Root first: [A->B; B->C] means A delegated to B, who extended to C. *)

(** Why a chain was refused — one constructor per chaos scenario. *)
type failure =
  | F_empty
  | F_expired
  | F_forged  (** Bad stamp, or no trusted CA matches the issuer. *)
  | F_broken  (** Link mismatch, or the holder is not the last delegatee. *)
  | F_cycle  (** A principal appears twice along the chain. *)
  | F_over_hop  (** Chain longer than some hop's [dg_hops] allows. *)
  | F_revoked  (** A hop's mint epoch predates the delegator's current epoch. *)
  | F_widened  (** A hop's prefix escapes its parent's scope. *)

val failure_name : failure -> string
(** Short metric-safe slug: ["expired"], ["forged"], ["cycle"], ... *)

val failure_message : failure -> string
(** Human-readable refusal reason for wire errors. *)

type summary = {
  sum_root : string;  (** The principal the delegated work runs as. *)
  sum_holder : string;
  sum_grant : Idbox_acl.Rights.t;  (** Intersection of every hop's mask. *)
  sum_prefix : string;  (** The narrowest (last) hop's scope. *)
  sum_expires : int64;  (** Earliest hop expiry. *)
  sum_hops : int;
}

(** Per-delegator revocation epochs.  Monotone: epochs only grow, and
    {!merge} is a pointwise max — the convergent replication shape. *)
module Revocations : sig
  type t

  val create : unit -> t

  val epoch : t -> string -> int
  (** Current epoch for a delegator; 0 when never revoked. *)

  val revoke : t -> string -> int
  (** Bump the delegator's epoch by one; returns the new epoch.  Every
      token the delegator minted under a lower epoch is dead. *)

  val merge : t -> (string * int) list -> bool
  (** Pointwise max-merge of a peer's entries; true iff anything grew. *)

  val entries : t -> (string * int) list
  (** All (delegator, epoch) pairs with epoch > 0, sorted. *)

  val generation : t -> int
  (** Bumped on every change — the validation token for memoized chain
      verdicts. *)
end

val mint :
  Ca.t ->
  delegator:string ->
  delegatee:string ->
  rights:Idbox_acl.Rights.t ->
  prefix:string ->
  now:int64 ->
  ttl_ns:int64 ->
  hops:int ->
  ?epoch:int ->
  unit ->
  token
(** Mint one CA-attested hop.  [epoch] defaults to 0 — a delegator who
    has revoked must mint under their current epoch (see
    {!Revocations.epoch}) or the new token is dead on arrival. *)

val verify_token : trusted:Ca.t list -> token -> bool
(** Stamp integrity against some trusted CA whose name matches the
    token's issuer.  Structural only — expiry, linkage and revocation
    belong to {!validate}. *)

val validate :
  trusted:Ca.t list ->
  revocations:Revocations.t ->
  now:int64 ->
  holder:string ->
  chain ->
  (summary, failure) result
(** Validate a whole chain presented by [holder], fail-closed: the
    first defect (checked in a fixed order: empty, over-length, forged,
    expired, broken linkage, cycle, widened scope, revoked) rejects
    everything.  On success the summary carries the attenuated
    authority: root identity, intersected grant, narrowest prefix. *)

val scope_contains : prefix:string -> string -> bool
(** [scope_contains ~prefix path]: is [path] at or under [prefix]?
    Pure string containment over normalized paths; ["/"] contains
    everything. *)

val chain_key : holder:string -> chain -> string
(** A compact cache key covering every stamp in the chain plus the
    holder — two chains with the same key verify identically. *)

val token_fields : token -> string list
(** Flat wire encoding of one token (paired with {!token_of_fields}). *)

val token_of_fields : string list -> (token, string) result
