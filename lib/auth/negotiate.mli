(** Authentication negotiation, Chirp-style (paper §4): "upon
    connecting, the client and server negotiate an acceptable
    authentication method and then the client must prove its identity".

    The server is an {!acceptor} — a set of enabled methods with their
    verification state.  The client presents credentials in preference
    order; the first mutually supported, successfully verified one
    determines the session principal. *)

type acceptor

type rejection =
  | Method_unsupported of string
      (** The server does not accept this method at all. *)
  | Invalid_credential of string
      (** Supported method, but verification failed (reason text). *)

val acceptor :
  ?trusted_cas:Ca.t list ->
  ?realm:Kerberos.t ->
  ?unix_ok:(string -> bool) ->
  ?host_ok:(string -> bool) ->
  ?admit:(Idbox_identity.Principal.t -> (unit, string) result) ->
  unit ->
  acceptor
(** Enable methods by supplying their verification state: trusted CAs
    enable [globus], a realm enables [kerberos], validators enable
    [unix] and [hostname].

    [admit] is the admission policy applied {e after} a credential
    verifies — e.g. {!Cas.admit} for community-based admission.  The
    authenticated principal keeps their own global name either way;
    admission only decides whether a session opens at all. *)

val methods : acceptor -> string list
(** Enabled method tokens, in the order tried. *)

val trusted_cas : acceptor -> Ca.t list
(** The CAs this acceptor trusts — also the trust anchors for
    {!Delegation} chains presented to the accepting server. *)

val verify :
  acceptor -> now:int64 -> Credential.t ->
  (Idbox_identity.Principal.t, rejection) result
(** Verify one credential. *)

val negotiate :
  acceptor ->
  now:int64 ->
  Credential.t list ->
  (Idbox_identity.Principal.t * string * int, string) result
(** Try the client's credentials in order; on success return
    [(principal, method, attempts)] where [attempts] counts the
    credentials tried (each costs a protocol round trip).  On failure,
    an explanation mentioning every rejection. *)

val rejection_to_string : rejection -> string
