module Principal = Idbox_identity.Principal

type t = {
  cas_name : string;
  secret : string;
  membership : (string, (string, unit) Hashtbl.t) Hashtbl.t;
      (* community -> set of canonical principal names *)
}

type assertion = {
  as_holder : string;
  as_community : string;
  as_issued : int64;
  as_expires : int64;
  as_stamp : string;
}

let lifetime_ns = Int64.mul 3600L 1_000_000_000L

let counter = ref 0

let create ~name =
  incr counter;
  {
    cas_name = name;
    secret = Digest.string (Printf.sprintf "cas-secret-%s-%d" name !counter);
    membership = Hashtbl.create 8;
  }

let name t = t.cas_name

let community_table t community =
  match Hashtbl.find_opt t.membership community with
  | Some table -> table
  | None ->
    let table = Hashtbl.create 8 in
    Hashtbl.replace t.membership community table;
    table

let add_member t ~community principal =
  Hashtbl.replace (community_table t community) (Principal.to_string principal) ()

let remove_member t ~community principal =
  match Hashtbl.find_opt t.membership community with
  | Some table -> Hashtbl.remove table (Principal.to_string principal)
  | None -> ()

let is_member t ~community principal =
  match Hashtbl.find_opt t.membership community with
  | Some table -> Hashtbl.mem table (Principal.to_string principal)
  | None -> false

let communities t =
  Hashtbl.fold (fun c _ acc -> c :: acc) t.membership [] |> List.sort String.compare

let members t ~community =
  match Hashtbl.find_opt t.membership community with
  | None -> []
  | Some table ->
    Hashtbl.fold (fun m () acc -> m :: acc) table [] |> List.sort String.compare

let stamp_of t ~holder ~community ~issued ~expires =
  Digest.string
    (Printf.sprintf "%s|%s|%s|%Ld|%Ld" t.secret holder community issued expires)

let issue t ~community ~holder ~now =
  if not (is_member t ~community holder) then
    Error
      (Printf.sprintf "%s is not a member of community %S"
         (Principal.to_string holder) community)
  else
    let holder = Principal.to_string holder in
    let expires = Int64.add now lifetime_ns in
    Ok
      {
        as_holder = holder;
        as_community = community;
        as_issued = now;
        as_expires = expires;
        as_stamp = stamp_of t ~holder ~community ~issued:now ~expires;
      }

let verify t assertion ~now =
  Expiry.valid_at ~now ~expires:assertion.as_expires
  && String.equal assertion.as_stamp
       (stamp_of t ~holder:assertion.as_holder ~community:assertion.as_community
          ~issued:assertion.as_issued ~expires:assertion.as_expires)
  && is_member t ~community:assertion.as_community
       (Principal.of_string assertion.as_holder)

let admit t ~communities ~now principal =
  ignore now;
  if List.exists (fun community -> is_member t ~community principal) communities
  then Ok ()
  else
    Error
      (Printf.sprintf "%s belongs to none of the admitted communities (%s)"
         (Principal.to_string principal)
         (String.concat ", " communities))
