(** The one expiry-boundary rule for every timed credential.

    A credential carrying an [expires] timestamp is valid while
    [now <= expires] — the boundary instant {e inclusive}.  A holder
    told "valid until T" may present the credential at exactly T; the
    first invalid instant is T+1ns.  {!Cas.verify},
    {!Kerberos.verify} and {!Delegation.validate} all decide expiry
    through this function, so the boundary cannot drift between
    credential kinds. *)

val valid_at : now:int64 -> expires:int64 -> bool
(** [valid_at ~now ~expires] is [now <= expires]: true at the boundary
    instant itself, false one nanosecond later. *)
