module Principal = Idbox_identity.Principal

type acceptor = {
  trusted_cas : Ca.t list;
  realm : Kerberos.t option;
  unix_ok : (string -> bool) option;
  host_ok : (string -> bool) option;
  admit : (Principal.t -> (unit, string) result) option;
}

type rejection =
  | Method_unsupported of string
  | Invalid_credential of string

let acceptor ?(trusted_cas = []) ?realm ?unix_ok ?host_ok ?admit () =
  { trusted_cas; realm; unix_ok; host_ok; admit }

let trusted_cas t = t.trusted_cas

let methods t =
  List.concat
    [
      (if t.trusted_cas <> [] then [ "globus" ] else []);
      (match t.realm with Some _ -> [ "kerberos" ] | None -> []);
      (match t.unix_ok with Some _ -> [ "unix" ] | None -> []);
      (match t.host_ok with Some _ -> [ "hostname" ] | None -> []);
    ]

let apply_admission t principal =
  match t.admit with
  | None -> Ok principal
  | Some admit ->
    (match admit principal with
     | Ok () -> Ok principal
     | Error why -> Error (Invalid_credential ("admission denied: " ^ why)))

let verify_method t ~now cred =
  match cred with
  | Credential.Gsi cert ->
    if t.trusted_cas = [] then Error (Method_unsupported "globus")
    else
      (match List.find_opt (fun ca -> Ca.verify ca cert) t.trusted_cas with
       | None -> Error (Invalid_credential "no trusted CA signed this certificate")
       | Some ca ->
         if Ca.is_revoked ca cert then
           Error (Invalid_credential "certificate revoked")
         else Ok (Ca.certificate_principal cert))
  | Credential.Krb ticket ->
    (match t.realm with
     | None -> Error (Method_unsupported "kerberos")
     | Some realm ->
       if Kerberos.verify realm ticket ~now then
         Ok (Kerberos.ticket_principal ticket)
       else Error (Invalid_credential "ticket invalid or expired"))
  | Credential.Unix_account name ->
    (match t.unix_ok with
     | None -> Error (Method_unsupported "unix")
     | Some ok ->
       if ok name then Ok (Principal.make ~scheme:Principal.Unix name)
       else Error (Invalid_credential (Printf.sprintf "unknown account %S" name)))
  | Credential.Host host ->
    (match t.host_ok with
     | None -> Error (Method_unsupported "hostname")
     | Some ok ->
       if ok host then Ok (Principal.make ~scheme:Principal.Hostname host)
       else Error (Invalid_credential (Printf.sprintf "host %S not allowed" host)))

let verify t ~now cred =
  match verify_method t ~now cred with
  | Ok principal -> apply_admission t principal
  | Error _ as e -> e

let rejection_to_string = function
  | Method_unsupported m -> Printf.sprintf "method %s not supported" m
  | Invalid_credential why -> Printf.sprintf "credential rejected: %s" why

let negotiate t ~now creds =
  let rec go attempts rejections = function
    | [] ->
      let detail =
        match rejections with
        | [] -> "client offered no credentials"
        | rs -> String.concat "; " (List.rev_map rejection_to_string rs)
      in
      Error (Printf.sprintf "authentication failed: %s" detail)
    | cred :: rest ->
      (match verify t ~now cred with
       | Ok principal -> Ok (principal, Credential.method_name cred, attempts + 1)
       | Error r -> go (attempts + 1) (r :: rejections) rest)
  in
  go 0 [] creds
