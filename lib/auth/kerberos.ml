module Principal = Idbox_identity.Principal

type t = {
  krb_realm : string;
  secret : string;
  users : (string, string) Hashtbl.t;  (* user -> password *)
}

type ticket = {
  user : string;
  realm : string;
  issued_at : int64;
  expires_at : int64;
  stamp : string;
}

let lifetime_ns = Int64.mul 36_000L 1_000_000_000L (* 10 hours *)

let counter = ref 0

let create ~realm =
  incr counter;
  {
    krb_realm = realm;
    secret = Digest.string (Printf.sprintf "kdc-secret-%s-%d" realm !counter);
    users = Hashtbl.create 8;
  }

let realm t = t.krb_realm

let add_user t user ~password = Hashtbl.replace t.users user password

let stamp_of t ~user ~issued_at ~expires_at =
  Digest.string
    (Printf.sprintf "%s|%s|%s|%Ld|%Ld" t.secret user t.krb_realm issued_at
       expires_at)

let login t ~user ~password ~now =
  match Hashtbl.find_opt t.users user with
  | None -> Error (Printf.sprintf "kerberos: unknown user %S" user)
  | Some stored when not (String.equal stored password) ->
    Error "kerberos: bad password"
  | Some _ ->
    let expires_at = Int64.add now lifetime_ns in
    Ok
      {
        user;
        realm = t.krb_realm;
        issued_at = now;
        expires_at;
        stamp = stamp_of t ~user ~issued_at:now ~expires_at;
      }

let verify t ticket ~now =
  String.equal ticket.realm t.krb_realm
  && Expiry.valid_at ~now ~expires:ticket.expires_at
  && String.equal ticket.stamp
       (stamp_of t ~user:ticket.user ~issued_at:ticket.issued_at
          ~expires_at:ticket.expires_at)

let ticket_principal ticket =
  Principal.make ~scheme:Principal.Kerberos
    (Printf.sprintf "%s@%s" ticket.user ticket.realm)
