(* The policy compiler: snapshot the box's reachable ACL universe into
   an {!Idbox_kernel.Policy} decision program.

   Compilation walks the filesystem host-side (no delegated syscalls —
   the whole compile is charged flat at
   {!Idbox_kernel.Cost.t.bytecode_compile_ns} by the caller, off the
   hot path), mirroring the enforcement engine's resolution semantics
   exactly: the supervisor's uid for every access, ancestor symlinks
   resolved with the same expansion budget, unparseable ACLs compiled
   as deny-all, unreadable ones as "no ACL".

   Anything the snapshot cannot answer as a pure function of
   (governing ACL, principal, right) is recorded as NOT COMPILED
   (value -1) rather than omitted — existing objects must occupy the
   path table even when uncompilable, or the "absent means the object
   does not exist" reading of a path-table miss would break.  Subtrees
   the supervisor cannot enumerate are omitted entirely, which is
   safe: their directories never enter the dir table either, so every
   probe in them misses to [Unknown].

   The verifier runs before anything is installed: the structural
   check ({!Idbox_kernel.Policy.check_program}: size bounds, perfect
   placement, RET termination) plus a seeded semantic sample that
   re-derives verdicts from the live filesystem and rejects any
   program that disagrees.  Rejection falls closed to the interpreter,
   never to allow. *)

module Policy = Idbox_kernel.Policy
module Acl = Idbox_acl.Acl
module Entry = Idbox_acl.Entry
module Right = Idbox_acl.Right
module Rights = Idbox_acl.Rights
module Wildcard = Idbox_identity.Wildcard
module Principal = Idbox_identity.Principal
module Path = Idbox_vfs.Path
module Fs = Idbox_vfs.Fs
module Inode = Idbox_vfs.Inode

(* --- rights as mask bits ---------------------------------------------

   The VM is policy-agnostic: rights travel as bit positions defined
   here, by position in {!Right.all}, independent of the internal
   encoding of {!Rights.t}. *)

let right_bit r =
  let rec idx i = function
    | [] -> invalid_arg "Policy_compile.right_bit"
    | x :: rest -> if Right.equal x r then i else idx (i + 1) rest
  in
  idx 0 Right.all

let rights_mask rights =
  List.fold_left
    (fun m r -> if Rights.mem r rights then m lor (1 lsl right_bit r) else m)
    0 Right.all

(* --- host-side resolution mirrors ------------------------------------ *)

(* Mirror of [Enforce.canonical_parents]: resolve ancestor symlinks
   (as root, like the engine's in-memory name walk), collapse ".."
   against the canonical prefix, leave the final component alone. *)
let canonical_parents fs path =
  let join_canonical resolved comp =
    if String.equal resolved "/" then "/" ^ comp else resolved ^ "/" ^ comp
  in
  let rec go resolved comps expansions =
    match comps with
    | [] -> resolved
    | [ final ] -> join_canonical resolved final
    | comp :: rest ->
      if String.equal comp ".." then go (Path.dirname resolved) rest expansions
      else
        let candidate = join_canonical resolved comp in
        (match Fs.lstat fs ~uid:0 candidate with
         | Ok st
           when st.Fs.st_kind = Inode.Symlink && expansions < Fs.symlink_limit
           ->
           (match Fs.readlink fs ~uid:0 candidate with
            | Ok target ->
              if Path.is_absolute target then
                go "/" (Path.components target @ rest) (expansions + 1)
              else go resolved (Path.components target @ rest) (expansions + 1)
            | Error _ -> go candidate rest expansions)
         | Ok _ | Error _ -> go candidate rest expansions)
  in
  let p = Path.normalize path in
  if String.equal p "/" then "/" else go "/" (Path.components p) 0

(* Mirror of [Enforce.resolve_final]: chase the final component's
   symlink chain with the supervisor's uid and the shared budget. *)
let resolve_final fs ~uid path =
  let rec go path depth =
    match Fs.lstat fs ~uid path with
    | Ok st when st.Fs.st_kind = Inode.Symlink && depth < Fs.symlink_limit ->
      (match Fs.readlink fs ~uid path with
       | Ok target ->
         go (canonical_parents fs (Path.join (Path.dirname path) target))
           (depth + 1)
       | Error _ -> path)
    | Ok _ | Error _ -> path
  in
  go (canonical_parents fs path) 0

(* Mirror of [Enforce.read_acl_file] + [dir_acl] fail-closed rules:
   unreadable (or absent) ACL file -> no ACL; unparseable -> deny-all. *)
let acl_of_dir fs ~uid dir =
  match Fs.read_file fs ~uid (Path.join dir Acl.filename) with
  | Error _ -> None
  | Ok text ->
    (match Acl.of_string text with
     | Ok acl -> Some acl
     | Error _ -> Some Acl.empty)

(* --- the snapshot walk ------------------------------------------------ *)

type snapshot = {
  (* ACL universe, deduplicated by rendered text. *)
  mutable acls : Acl.t list;  (* reversed; index = id *)
  acl_ids : (string, int) Hashtbl.t;
  (* lexical dir path -> ACL id or -1 *)
  dirs : (string, int) Hashtbl.t;
  (* lexical object path -> governing ACL id or -1 *)
  paths : (string, int) Hashtbl.t;
  mutable overflow : bool;
}

let max_universe = Policy.max_table / 4

let intern_acl snap acl =
  let key = Acl.to_string acl in
  match Hashtbl.find_opt snap.acl_ids key with
  | Some id -> id
  | None ->
    let id = Hashtbl.length snap.acl_ids in
    Hashtbl.replace snap.acl_ids key id;
    snap.acls <- acl :: snap.acls;
    id

let add_dir snap path v =
  if Hashtbl.length snap.dirs >= max_universe then snap.overflow <- true
  else Hashtbl.replace snap.dirs path v

let add_path snap path v =
  if Hashtbl.length snap.paths >= max_universe then snap.overflow <- true
  else Hashtbl.replace snap.paths path v

(* The governing-ACL id for an object's final resolved path, or -1. *)
let object_value fs ~uid snap final =
  match acl_of_dir fs ~uid (Path.dirname final) with
  | Some acl -> intern_acl snap acl
  | None -> -1

let snapshot fs ~uid =
  let snap =
    {
      acls = [];
      acl_ids = Hashtbl.create 16;
      dirs = Hashtbl.create 64;
      paths = Hashtbl.create 256;
      overflow = false;
    }
  in
  let rec walk_dir dir =
    if snap.overflow then ()
    else
      let own_acl = acl_of_dir fs ~uid dir in
      match Fs.readdir fs ~uid dir with
      | Error _ ->
        (* Cannot enumerate: children stay unknown, so neither
           nonexistence claims nor in-dir verdicts may come from here. *)
        add_dir snap dir (-1)
      | Ok names ->
        add_dir snap dir
          (match own_acl with Some a -> intern_acl snap a | None -> -1);
        List.iter
          (fun name ->
            if not snap.overflow then begin
              let child =
                if String.equal dir "/" then "/" ^ name else dir ^ "/" ^ name
              in
              match Fs.lstat fs ~uid child with
              | Error _ ->
                (* Present in the listing but not statable: occupy the
                   slot, answer nothing. *)
                add_path snap child (-1)
              | Ok st ->
                (match st.Fs.st_kind with
                 | Inode.Directory ->
                   add_path snap child
                     (match own_acl with
                      | Some a -> intern_acl snap a
                      | None -> -1);
                   walk_dir child
                 | Inode.Symlink ->
                   let final = resolve_final fs ~uid child in
                   add_path snap child (object_value fs ~uid snap final);
                   (* A symlink that lands on a directory also serves as
                      a directory alias for parent-fallback probes — but
                      only when the target's children are all plain
                      (a symlink child would be chased by the engine,
                      diverging from the alias's own ACL answer). *)
                   (match Fs.lstat fs ~uid final with
                    | Ok fst when fst.Fs.st_kind = Inode.Directory ->
                      let alias_value =
                        match (acl_of_dir fs ~uid final, Fs.readdir fs ~uid final) with
                        | Some a, Ok children
                          when List.for_all
                                 (fun n ->
                                   let p =
                                     if String.equal final "/" then "/" ^ n
                                     else final ^ "/" ^ n
                                   in
                                   match Fs.lstat fs ~uid p with
                                   | Ok s -> s.Fs.st_kind <> Inode.Symlink
                                   | Error _ -> false)
                                 children -> intern_acl snap a
                        | _ -> -1
                      in
                      add_dir snap child alias_value
                    | Ok _ | Error _ -> ())
                 | _ ->
                   add_path snap child
                     (match own_acl with
                      | Some a -> intern_acl snap a
                      | None -> -1))
            end)
          names
  in
  (* Root is both a directory and an object governed by itself. *)
  walk_dir "/";
  if not snap.overflow then begin
    match acl_of_dir fs ~uid "/" with
    | Some a -> add_path snap "/" (intern_acl snap a)
    | None -> add_path snap "/" (-1)
  end;
  snap

(* --- program construction --------------------------------------------- *)

(* Try seeds until every key lands in a distinct slot: the perfect-hash
   construction.  Grows the table (up to the budget) when no seed in
   the trial window works. *)
let build_table ~slot items =
  let n = List.length items in
  let rec pow2 x = if x >= n * 2 && x >= 4 then x else pow2 (x * 2) in
  let rec try_len len =
    if len > Policy.max_table then None
    else
      let rec try_seed seed trials =
        if trials = 0 then None
        else begin
          let key = Array.make len (-1) in
          let value = Array.make len (-1) in
          let ok = ref true in
          List.iter
            (fun (k, pool_idx, v) ->
              if !ok then begin
                let i = slot ~seed ~len k in
                if key.(i) >= 0 then ok := false
                else begin
                  key.(i) <- pool_idx;
                  value.(i) <- v
                end
              end)
            items;
          if !ok then Some (seed, key, value) else try_seed (seed + 1) (trials - 1)
        end
      in
      match try_seed 1 64 with
      | Some r -> Some r
      | None -> try_len (len * 2)
  in
  try_len (pow2 4)

let build_program fs ~uid =
  let snap = snapshot fs ~uid in
  if snap.overflow then Error "universe exceeds compile budget"
  else begin
    let pool = ref [] and pool_n = ref 0 in
    let interned = Hashtbl.create 256 in
    let intern s =
      match Hashtbl.find_opt interned s with
      | Some i -> i
      | None ->
        let i = !pool_n in
        Hashtbl.replace interned s i;
        pool := s :: !pool;
        incr pool_n;
        i
    in
    let acls = Array.of_list (List.rev snap.acls) in
    (* Per-ACL: exact rows for literal patterns (union per principal,
       matching [Acl.rights_of]), one WILD instruction per wildcard
       entry, RET-terminated blocks in one flat stream. *)
    let code = ref [] and code_n = ref 0 in
    let emit i =
      code := i :: !code;
      incr code_n
    in
    let exact_rows = ref [] in
    let acl_off = Array.make (Array.length acls) 0 in
    let pattern_too_long = ref false in
    Array.iteri
      (fun id acl ->
        acl_off.(id) <- !code_n;
        let literal = Hashtbl.create 8 in
        List.iter
          (fun (e : Entry.t) ->
            let src = Wildcard.source e.Entry.pattern in
            if Wildcard.is_literal e.Entry.pattern then begin
              let prior =
                Option.value (Hashtbl.find_opt literal src) ~default:0
              in
              Hashtbl.replace literal src
                (prior lor rights_mask e.Entry.rights)
            end
            else begin
              if String.length src > Policy.max_pattern then
                pattern_too_long := true;
              emit Policy.op_wild;
              emit (intern src);
              emit (rights_mask e.Entry.rights)
            end)
          (Acl.entries acl);
        emit Policy.op_ret;
        Hashtbl.iter
          (fun principal mask ->
            exact_rows := (principal, id, mask) :: !exact_rows)
          literal)
      acls;
    if !pattern_too_long then Error "wildcard pattern exceeds budget"
    else begin
      let dir_items =
        Hashtbl.fold (fun k v acc -> (k, intern k, v) :: acc) snap.dirs []
        |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
      in
      let path_items =
        Hashtbl.fold (fun k v acc -> (k, intern k, v) :: acc) snap.paths []
        |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
      in
      let ex_items =
        List.map (fun (p, id, mask) -> (p, intern p, id, mask)) !exact_rows
        |> List.sort (fun (a, _, i, _) (b, _, j, _) ->
               match String.compare a b with 0 -> Int.compare i j | c -> c)
      in
      match
        ( build_table ~slot:Policy.dir_slot dir_items,
          build_table ~slot:Policy.path_slot path_items,
          build_table
            ~slot:(fun ~seed ~len (k, acl) -> Policy.ex_slot ~seed ~len ~acl k)
            (List.map (fun (p, pi, id, mask) -> ((p, id), pi, mask)) ex_items)
        )
      with
      | Some (ds, dk, dv), Some (ps, pk, pv), Some (es, ek, em) ->
        (* The exact table needs the ACL id alongside the mask: rebuild
           the parallel acl array from the placed keys. *)
        let ea = Array.make (Array.length ek) (-1) in
        List.iter
          (fun (p, _, id, _) ->
            let i = Policy.ex_slot ~seed:es ~len:(Array.length ek) ~acl:id p in
            if ek.(i) >= 0 then ea.(i) <- id)
          ex_items;
        let p =
          {
            Policy.p_gen = Fs.generation fs;
            p_pool = Array.of_list (List.rev !pool);
            p_code = Array.of_list (List.rev !code);
            p_acl_off = acl_off;
            p_dir_seed = ds;
            p_dir_key = dk;
            p_dir_val = dv;
            p_path_seed = ps;
            p_path_key = pk;
            p_path_val = pv;
            p_ex_seed = es;
            p_ex_key = ek;
            p_ex_acl = ea;
            p_ex_mask = em;
          }
        in
        Ok (p, snap)
      | _ -> Error "no perfect hash within table budget"
    end
  end

(* --- the seeded semantic verifier ------------------------------------- *)

(* Deterministic splitmix-style PRNG: no wall-clock, no global state. *)
let prng seed =
  let state = ref (seed land 0x3FFFFFFFFFFFFFF) in
  fun bound ->
    state := ((!state * 0x2545F4914F6CDD1D) + 0x9E3779B97F4A7C1) land max_int;
    (!state lsr 17) mod bound

(* Re-derive the expected verdict for one sampled check from the live
   filesystem — independent of the snapshot the program was built from.
   [None] means the engine would use the nobody fallback (not a pure
   ACL function), where the program must answer [Unknown]. *)
let expected_verdict fs ~uid ~path ~principal right =
  let final = resolve_final fs ~uid path in
  match acl_of_dir fs ~uid (Path.dirname final) with
  | Some acl -> Some (Acl.check acl principal right)
  | None -> None

let verify fs ~uid ~seed ~samples prog snap =
  let paths =
    Hashtbl.fold (fun k _ acc -> k :: acc) snap.paths []
    |> List.sort String.compare
    |> Array.of_list
  in
  let dirs =
    Hashtbl.fold (fun k _ acc -> k :: acc) snap.dirs []
    |> List.sort String.compare
    |> Array.of_list
  in
  let principals =
    let literals =
      List.concat_map
        (fun acl ->
          List.filter_map
            (fun (e : Entry.t) ->
              if Wildcard.is_literal e.Entry.pattern then
                Some (Wildcard.source e.Entry.pattern)
              else None)
            (Acl.entries acl))
        snap.acls
    in
    Array.of_list
      (List.sort_uniq String.compare
         (("unix:nobody" :: "globus:/O=Elsewhere/CN=stranger" :: literals)))
  in
  let rights = Array.of_list Right.all in
  let rand = prng seed in
  let disagreement = ref None in
  let n_paths = Array.length paths and n_dirs = Array.length dirs in
  if n_paths = 0 && n_dirs = 0 then Ok ()
  else begin
    for _ = 1 to samples do
      if !disagreement = None then begin
        let principal = Principal.of_string principals.(rand (Array.length principals)) in
        (* Evaluate with the canonical rendering — exactly the string
           the engine presents at check time. *)
        let who = Principal.to_string principal in
        let right = rights.(rand (Array.length rights)) in
        let bit = right_bit right in
        (* Three probe shapes: an existing object, a nonexistent child
           of an existing directory, and an in-dir check. *)
        let shape = rand 3 in
        if shape = 0 && n_paths > 0 then begin
          let path = paths.(rand n_paths) in
          let got = Policy.eval_object prog ~principal:who ~path ~right_bit:bit in
          match (expected_verdict fs ~uid ~path ~principal right, got) with
          | Some true, Policy.Deny | Some false, Policy.Allow ->
            disagreement :=
              Some (Printf.sprintf "object %s %s %c" path who (Right.to_char right))
          | None, Policy.Allow | None, Policy.Deny ->
            disagreement :=
              Some (Printf.sprintf "fallback %s answered by program" path)
          | _ -> ()
        end
        else if shape = 1 && n_dirs > 0 then begin
          let dir = dirs.(rand n_dirs) in
          let path =
            if String.equal dir "/" then "/__pc_probe" else dir ^ "/__pc_probe"
          in
          let got = Policy.eval_object prog ~principal:who ~path ~right_bit:bit in
          match (expected_verdict fs ~uid ~path ~principal right, got) with
          | Some true, Policy.Deny | Some false, Policy.Allow ->
            disagreement :=
              Some
                (Printf.sprintf "absent %s %s %c" path who (Right.to_char right))
          | None, Policy.Allow | None, Policy.Deny ->
            disagreement :=
              Some (Printf.sprintf "fallback %s answered by program" path)
          | _ -> ()
        end
        else if n_dirs > 0 then begin
          let dir = dirs.(rand n_dirs) in
          let got = Policy.eval_in_dir prog ~principal:who ~dir ~right_bit:bit in
          let want =
            match acl_of_dir fs ~uid dir with
            | Some acl -> Some (Acl.check acl principal right)
            | None -> None
          in
          match (want, got) with
          | Some true, Policy.Deny | Some false, Policy.Allow ->
            disagreement :=
              Some (Printf.sprintf "in-dir %s %s %c" dir who (Right.to_char right))
          | None, Policy.Allow | None, Policy.Deny ->
            disagreement :=
              Some (Printf.sprintf "fallback dir %s answered by program" dir)
          | _ -> ()
        end
      end
    done;
    match !disagreement with
    | Some what -> Error ("verifier: program disagrees with interpreter: " ^ what)
    | None -> Ok ()
  end

(* --- entry point ------------------------------------------------------ *)

let compile ?tamper ?(verify_seed = 0x1db0) ?(verify_samples = 256) fs ~uid =
  match build_program fs ~uid with
  | Error _ as e -> e
  | Ok (prog, snap) ->
    let prog = match tamper with Some f -> f prog | None -> prog in
    (match Policy.check_program prog with
     | Error msg -> Error ("verifier: " ^ msg)
     | Ok () ->
       (match verify fs ~uid ~seed:verify_seed ~samples:verify_samples prog snap with
        | Error _ as e -> e
        | Ok () -> Ok prog))
