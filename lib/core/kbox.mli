(** In-kernel identity boxing: the paper's future-work proposal
    (§9, Figure 6) as an LSM-style kernel module.

    Where {!Box} traps every system call through a userspace supervisor
    — paying context switches, register peek/poke, and channel copies —
    a [Kbox] registers a security hook {e inside} the kernel: processes
    run untraced, every call is checked against the same per-directory
    ACLs at direct kernel cost, and [get_user_name] is answered by an
    in-kernel identity table keyed by pid (children inherit their
    parent's identity through the process tree).  The Fig. 6 ablation
    bench runs identical workloads under {!Box} and under [Kbox] to
    quantify what moving identity boxing into the OS would save.

    Prototype limits (the paper's "open issues for future work"): one
    [Kbox] per kernel; the reserve right, ACL mutation from inside
    ([setacl]), and [/etc/passwd] redirection are not implemented —
    enforcement and identity are, which is what the ablation measures. *)

type t

val install :
  Idbox_kernel.Kernel.t ->
  supervisor_uid:int ->
  ?caching:bool ->
  ?bytecode:bool ->
  unit ->
  t
(** Register the security hook and identity provider on a kernel,
    replacing any previously installed ones.  [caching] (default true)
    toggles the engine's generation-validated caches and [bytecode]
    (default: the [caching] value) the compiled-policy fast path, as in
    {!Idbox.Enforce.create}. *)

val uninstall : t -> unit
(** Remove the hook and provider. *)

val spawn :
  t ->
  identity:Idbox_identity.Principal.t ->
  path:string ->
  args:string list ->
  unit ->
  (int, Idbox_vfs.Errno.t) result
(** Run an executable in a kernel-level protection domain labelled with
    [identity].  The identity must hold the execute right on the
    program. *)

val spawn_main :
  t ->
  identity:Idbox_identity.Principal.t ->
  main:Idbox_kernel.Program.main ->
  args:string list ->
  int
(** Closure flavour, for tests and benches. *)

val identity_of : t -> int -> Idbox_identity.Principal.t option
(** The identity a pid runs under (inherited through the process tree). *)

val enforcer : t -> Enforce.t
(** The (in-kernel mode) enforcement engine, e.g. for installing ACLs. *)

(** {1 The hierarchical namespace (Figure 6)}

    Every identity a [Kbox] hosts is a node in a {!Idbox_identity.Hierarchy}
    under [root:<operator>:grid], giving the management relationships the
    paper describes: the operator's domain manages every visitor, and
    {!retire} of any subtree terminates the protection domains under it
    ("a tree of identities allows every user to create protection domains
    as needed" — and to take them away). *)

val namespace : t -> Idbox_identity.Hierarchy.t

val domain_of :
  t -> Idbox_identity.Principal.t -> Idbox_identity.Hierarchy.domain option
(** The domain hosting an identity (created at its first spawn). *)

val retire : t -> full_name:string -> (int, string) result
(** Delete the named domain and its whole subtree; every live process
    whose identity lives under it is killed (SIGKILL), and those
    identities are no longer admitted.  Returns the number of processes
    terminated. *)
