(** The identity box (paper §3): a secure execution space in which every
    process and resource is associated with a high-level identity string
    rather than a local account.

    A box is created by any user — the {e supervising user} — with no
    privilege and no reference to the account database.  Processes run
    inside it under the supervising user's Unix uid, but every system
    call is trapped by the box's supervisor, which enforces ACLs under
    the {e visiting identity}, redirects [/etc/passwd] to a private copy
    naming the visitor, answers [get_user_name] with the identity,
    confines signals to the box, and extends the namespace with remote
    mounts.  One Unix account may operate many boxes at once; within the
    box the supervisor is effectively root with respect to the visitor.

    Cost: every trapped call pays the Fig. 4 price — context switches,
    register PEEK/POKE, and for bulk I/O one extra copy through the I/O
    channel.  These charges are applied by the kernel and the
    {!Idbox_ptrace} layer; the enforcement work itself (delegated I/O to
    read ACL files, ACL evaluation) is charged by {!Enforce}. *)

type t

val create :
  Idbox_kernel.Kernel.t ->
  supervisor_uid:int ->
  identity:Idbox_identity.Principal.t ->
  ?mounts:(string * Remote.t) list ->
  ?small_io_threshold:int ->
  ?audit:bool ->
  ?caching:bool ->
  ?bytecode:bool ->
  unit ->
  (t, Idbox_vfs.Errno.t) result
(** Build a box: creates the per-box working area under [/tmp] (fresh
    home directory with an owner ACL for the identity, private
    [/etc/passwd] copy with the visitor prepended), the I/O channel, and
    the trap handler.  [mounts] attaches remote drivers under path
    prefixes (e.g. [("/chirp/alpha", driver)]).  [small_io_threshold]
    (default 512 bytes) is the cutoff between PEEK/POKE data movement
    and the I/O channel.  [audit] enables the forensic trail (§9);
    read it with {!audit_trail}.  [caching] (default true) toggles the
    enforcement engine's generation-validated caches (see
    {!Idbox.Enforce.create}). *)

val identity : t -> Idbox_identity.Principal.t
val identity_string : t -> string
val home : t -> string
(** The visitor's fresh home directory. *)

val base : t -> string
(** The per-box working area ([/tmp/box_N]). *)

val passwd_path : t -> string
(** The private [/etc/passwd] copy reads inside the box are redirected
    to. *)

val handler : t -> Idbox_kernel.Trace.handler
(** The trap handler; attach it to processes that should live in the
    box (both {!spawn} entry points do this). *)

val supervisor_view : t -> Idbox_kernel.View.t
(** The supervisor's own execution context — how host-level code stages
    files or adjusts ACLs "as the supervising user". *)

val enforcer : t -> Enforce.t

val kernel : t -> Idbox_kernel.Kernel.t

val spawn :
  t ->
  ?check_exec:bool ->
  path:string ->
  args:string list ->
  unit ->
  (int, Idbox_vfs.Errno.t) result
(** Run the executable at [path] inside the box.  With [check_exec]
    (the default) the visiting identity must hold the execute right on
    the program — the Chirp remote-exec rule; pass [false] when the
    supervising user starts a program of their own choosing. *)

val spawn_main :
  t -> main:Idbox_kernel.Program.main -> args:string list -> int
(** Run a closure inside the box (tests, interactive sessions). *)

val member : t -> int -> bool
(** Is the pid currently a process of this box? *)

val audit_trail : t -> Audit.t option
(** The forensic trail, when the box was created with [~audit:true]:
    every object-naming operation the visitor attempted, with the box's
    verdict.  Supervisor-side state the visitor cannot reach. *)

val set_cwd : t -> pid:int -> string -> unit
(** Set a boxed process's working directory (used by remote [exec] to
    start a program in its staged directory).  No-op for non-members. *)

val set_acl :
  t -> dir:string -> Idbox_acl.Acl.t -> (unit, Idbox_vfs.Errno.t) result
(** Supervisor-side ACL installation (no admin-right check: the
    supervising user is omnipotent over the box). *)

val grant :
  t ->
  dir:string ->
  pattern:string ->
  Idbox_acl.Rights.t ->
  (unit, Idbox_vfs.Errno.t) result
(** Supervisor-side convenience: add rights for a principal pattern to a
    directory's ACL. *)
