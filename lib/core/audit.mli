(** The forensic audit trail (paper §9): "the identity box could be used
    for forensic purposes, recording the objects accessed and the
    activities taken by the untrusted user."

    A box with auditing enabled records one event per trapped system
    call that names an object: what was attempted, by which pid under
    which identity, on which path(s), and whether the box allowed it —
    including the errno it injected when it did not.  The trail is
    supervisor-side state: the contained program cannot see or alter
    it. *)

type verdict =
  | Allowed
  | Denied of Idbox_vfs.Errno.t

type event = {
  ev_seq : int;  (** Monotonic sequence number. *)
  ev_time : int64;  (** Simulated nanoseconds at the entry stop. *)
  ev_pid : int;
  ev_identity : string;
  ev_op : string;  (** Syscall name ("open", "unlink", ...). *)
  ev_path : string;  (** Primary object path ("" for pathless calls). *)
  ev_path2 : string option;  (** Secondary path (rename dst, link target). *)
  ev_verdict : verdict;
}

type t
(** A trail: a bounded, append-only event ring.  Once [capacity]
    events have been recorded the oldest is overwritten; {!length}
    keeps counting everything ever recorded, and the overwritten
    remainder shows up in {!dropped}. *)

val default_capacity : int
(** 4096 events — generous enough that ordinary sessions never drop. *)

val create : ?capacity:int -> unit -> t
(** [capacity] is clamped to at least 1. *)

val capacity : t -> int

val dropped : t -> int
(** Events overwritten by ring wraparound. *)

val record :
  t ->
  time:int64 ->
  pid:int ->
  identity:string ->
  op:string ->
  path:string ->
  ?path2:string ->
  verdict ->
  unit

val events : t -> event list
(** Retained events, in order of occurrence. *)

val length : t -> int
(** Events ever recorded (including any since overwritten). *)

val clear : t -> unit

val denied : t -> event list
(** Only the refused actions — the forensically interesting ones. *)

val touched_paths : t -> string list
(** Distinct object paths that appear in allowed events, sorted: "the
    objects accessed ... by the untrusted user". *)

val verdict_to_string : verdict -> string

val event_json : event -> string
(** One event as a JSON object. *)

val to_json : t -> string
(** [{"capacity":..,"total":..,"dropped":..,"events":[..]}], events
    oldest first. *)

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit
(** The whole trail, one line per event. *)
