module Kernel = Idbox_kernel.Kernel
module View = Idbox_kernel.View
module Syscall = Idbox_kernel.Syscall
module Program = Idbox_kernel.Program
module Right = Idbox_acl.Right
module Principal = Idbox_identity.Principal
module Path = Idbox_vfs.Path
module Errno = Idbox_vfs.Errno
module Hierarchy = Idbox_identity.Hierarchy

type t = {
  kb_kernel : Kernel.t;
  kb_enforce : Enforce.t;
  kb_sup : View.t;
  identities : (int, Principal.t) Hashtbl.t;
  ns : Hierarchy.t;
  grid : Hierarchy.domain;  (* root:<operator>:grid *)
  domains : (string, Hierarchy.domain) Hashtbl.t;
      (* canonical principal -> its protection domain *)
  m_check : Idbox_kernel.Metrics.counter;
  m_allow : Idbox_kernel.Metrics.counter;
  m_deny : Idbox_kernel.Metrics.counter;
}

(* Hierarchy node names cannot contain ':'; principals can. *)
let node_name principal =
  String.map (fun c -> if c = ':' then '.' else c) (Principal.to_string principal)

let identity_of t pid =
  let rec lookup pid =
    match Hashtbl.find_opt t.identities pid with
    | Some identity -> Some identity
    | None ->
      (match Kernel.parent_of t.kb_kernel pid with
       | Some parent when parent <> pid && parent <> 0 -> lookup parent
       | Some _ | None -> None)
  in
  lookup pid

let enforcer t = t.kb_enforce

let namespace t = t.ns

let domain_of t principal =
  Hashtbl.find_opt t.domains (Principal.to_string principal)

(* The visitor's protection domain: minted on the fly, no account
   database — Figure 6's claim, executed. *)
let domain_for t principal =
  let key = Principal.to_string principal in
  match Hashtbl.find_opt t.domains key with
  | Some d when Hierarchy.find t.ns (Hierarchy.full_name d) <> None -> d
  | Some _ | None ->
    let d =
      match Hierarchy.create_child t.grid (node_name principal) with
      | Ok d -> d
      | Error _ ->
        (match Hierarchy.find t.ns (Hierarchy.full_name t.grid ^ ":" ^ node_name principal) with
         | Some d -> d
         | None -> invalid_arg "Kbox.domain_for: cannot mint domain")
    in
    Hashtbl.replace t.domains key d;
    d

(* Map a request to the ACL question it poses, if any.  fd-level calls
   were authorized at open time, exactly as in the userspace box. *)
let verdict t ~identity (view : View.t) req =
  let abs path =
    Enforce.canonical_parents t.kb_enforce (Path.join view.View.cwd path)
  in
  let check_object path right =
    Enforce.check_object t.kb_enforce ~identity ~path:(abs path) right
  in
  let check_dir dir right =
    Enforce.check_in_dir t.kb_enforce ~identity ~dir:(abs dir) right
  in
  let check_delete path =
    let dir = Enforce.governing_dir t.kb_enforce (abs path) in
    match Enforce.check_in_dir t.kb_enforce ~identity ~dir Right.Delete with
    | Ok () -> Ok ()
    | Error _ -> Enforce.check_in_dir t.kb_enforce ~identity ~dir Right.Write
  in
  match req with
  | Syscall.Open { path; flags; _ } ->
    let r = if flags.Idbox_vfs.Fs.rd then check_object path Right.Read else Ok () in
    (match r with
     | Error _ as e -> e
     | Ok () ->
       if flags.Idbox_vfs.Fs.wr || flags.Idbox_vfs.Fs.creat then
         check_object path Right.Write
       else Ok ())
  | Syscall.Stat path | Syscall.Lstat path | Syscall.Readlink path
  | Syscall.Getacl path ->
    check_object path Right.List
  | Syscall.Readdir path | Syscall.Chdir path -> check_dir path Right.List
  | Syscall.Mkdir { path; _ } -> check_dir (Path.dirname (abs path)) Right.Write
  | Syscall.Unlink path | Syscall.Rmdir path -> check_delete path
  | Syscall.Rename { src; dst } ->
    (match check_delete src with
     | Error _ as e -> e
     | Ok () -> check_dir (Path.dirname (abs dst)) Right.Write)
  | Syscall.Link { target; path } ->
    (match check_object target Right.Read with
     | Error _ as e -> e
     | Ok () -> check_dir (Path.dirname (abs path)) Right.Write)
  | Syscall.Symlink { path; _ } -> check_dir (Path.dirname (abs path)) Right.Write
  | Syscall.Chmod { path; _ } | Syscall.Truncate { path; _ } ->
    check_object path Right.Write
  | Syscall.Chown _ -> Error Errno.EPERM
  | Syscall.Setacl { path; _ } -> check_dir path Right.Admin
  | Syscall.Spawn { path; _ } -> check_object path Right.Execute
  | Syscall.Kill { pid = target; _ } ->
    (match (identity_of t target : Principal.t option) with
     | Some target_id when Principal.equal target_id identity -> Ok ()
     | Some _ | None -> Error Errno.EPERM)
  | Syscall.Getpid | Syscall.Getppid | Syscall.Getuid | Syscall.Get_user_name
  | Syscall.Getcwd | Syscall.Close _ | Syscall.Read _ | Syscall.Write _
  | Syscall.Pread _ | Syscall.Pwrite _ | Syscall.Lseek _ | Syscall.Fstat _
  | Syscall.Pipe | Syscall.Waitpid _ | Syscall.Exit _ | Syscall.Getenv _
  | Syscall.Setenv _ | Syscall.Compute _ ->
    Ok ()

let hook t ~pid view req =
  match Hashtbl.find_opt t.identities pid, identity_of t pid with
  | None, None -> Ok ()  (* not a boxed process *)
  | _, Some identity ->
    (* Children inherit the domain: memoize the inherited binding. *)
    if not (Hashtbl.mem t.identities pid) then
      Hashtbl.replace t.identities pid identity;
    Idbox_kernel.Metrics.incr t.m_check;
    let v = verdict t ~identity view req in
    (match v with
     | Ok () -> Idbox_kernel.Metrics.incr t.m_allow
     | Error _ -> Idbox_kernel.Metrics.incr t.m_deny);
    v
  | Some _, None -> assert false

let install kernel ~supervisor_uid ?(caching = true) ?bytecode () =
  let kb_sup = Kernel.make_view kernel ~uid:supervisor_uid () in
  let ns = Hierarchy.create () in
  let operator_name =
    Idbox_kernel.Account.name_of_uid (Kernel.accounts kernel) supervisor_uid
  in
  let operator =
    match Hierarchy.create_child (Hierarchy.root ns) operator_name with
    | Ok d -> d
    | Error m -> invalid_arg m
  in
  let grid =
    match Hierarchy.create_child operator "grid" with
    | Ok d -> d
    | Error m -> invalid_arg m
  in
  let registry = Kernel.metrics kernel in
  let t =
    {
      kb_kernel = kernel;
      kb_enforce =
        Enforce.create ~in_kernel:true ~caching ?bytecode kernel ~supervisor:kb_sup ();
      kb_sup;
      identities = Hashtbl.create 16;
      ns;
      grid;
      domains = Hashtbl.create 16;
      m_check = Idbox_kernel.Metrics.counter registry "kbox.check";
      m_allow = Idbox_kernel.Metrics.counter registry "kbox.allow";
      m_deny = Idbox_kernel.Metrics.counter registry "kbox.deny";
    }
  in
  Kernel.set_security_hook kernel (Some (fun ~pid view req -> hook t ~pid view req));
  Kernel.set_identity_provider kernel
    (Some
       (fun pid ->
         Option.map Principal.to_string (identity_of t pid)));
  t

let uninstall t =
  Kernel.set_security_hook t.kb_kernel None;
  Kernel.set_identity_provider t.kb_kernel None

let spawn t ~identity ~path ~args () =
  let abs = Path.normalize path in
  match Enforce.check_object t.kb_enforce ~identity ~path:abs Right.Execute with
  | Error e -> Error e
  | Ok () ->
    (match
       Kernel.spawn t.kb_kernel ~uid:t.kb_sup.View.uid ~cwd:"/"
         ~env:[ ("USER", Principal.to_string identity) ]
         ~path:abs ~args ()
     with
     | Error e -> Error e
     | Ok pid ->
       ignore (domain_for t identity);
       Hashtbl.replace t.identities pid identity;
       Ok pid)

let spawn_main t ~identity ~main ~args =
  let pid =
    Kernel.spawn_main t.kb_kernel ~uid:t.kb_sup.View.uid ~cwd:"/"
      ~env:[ ("USER", Principal.to_string identity) ]
      ~main ~args ()
  in
  ignore (domain_for t identity);
  Hashtbl.replace t.identities pid identity;
  pid

let retire t ~full_name =
  match Hierarchy.find t.ns full_name with
  | None -> Error (Printf.sprintf "no domain %S" full_name)
  | Some target ->
    (* Identities whose domain is the target or lives under it. *)
    let doomed =
      Hashtbl.fold
        (fun key d acc ->
          if Hierarchy.can_manage ~actor:target ~subject:d then key :: acc
          else acc)
        t.domains []
    in
    let killed = ref 0 in
    Hashtbl.iter
      (fun pid principal ->
        if List.mem (Principal.to_string principal) doomed then
          match Kernel.kill t.kb_kernel ~pid ~signal:9 with
          | Ok () -> incr killed
          | Error _ -> ())
      (Hashtbl.copy t.identities);
    List.iter
      (fun key ->
        Hashtbl.remove t.domains key;
        Hashtbl.iter
          (fun pid p ->
            if String.equal (Principal.to_string p) key then
              Hashtbl.remove t.identities pid)
          (Hashtbl.copy t.identities))
      doomed;
    (match Hierarchy.delete target with
     | Ok () -> ()
     | Error _ -> () (* retiring the grid root itself: subtree cleared above *));
    Ok !killed
