module Kernel = Idbox_kernel.Kernel
module View = Idbox_kernel.View
module Syscall = Idbox_kernel.Syscall
module Cost = Idbox_kernel.Cost
module Acl = Idbox_acl.Acl
module Right = Idbox_acl.Right
module Rights = Idbox_acl.Rights
module Principal = Idbox_identity.Principal
module Path = Idbox_vfs.Path
module Errno = Idbox_vfs.Errno
module Fs = Idbox_vfs.Fs
module Perm = Idbox_vfs.Perm
module Account = Idbox_kernel.Account

(* Cache entries are validated against the ACL file's (ino, mtime): a
   cheap attribute check keeps every box's cache coherent when another
   supervisor (or the Chirp server) rewrites an ACL. *)
type cached = {
  token : (int * int64) option;  (** [None]: no ACL file existed. *)
  acl : Acl.t option;
}

type t = {
  kernel : Kernel.t;
  sup : View.t;
  cache : (string, cached) Hashtbl.t;
  in_kernel : bool;
}

let acl_filename = Acl.filename

let create ?(in_kernel = false) kernel ~supervisor () =
  { kernel; sup = supervisor; cache = Hashtbl.create 64; in_kernel }

(* A user-level supervisor pays two context switches to make its own
   system calls; an in-kernel implementation (the Fig. 6 ablation) pays
   only the direct cost. *)
let delegate t req =
  if t.in_kernel then Kernel.execute t.kernel t.sup req
  else Kernel.delegate t.kernel t.sup req

(* Resolve every ancestor symlink of [path], leaving the final component
   alone.  This is the supervisor's name-cache walk: lookups go straight
   at the (supervisor-mirrored) filesystem structure and are charged one
   path-component cost each, like dcache hits; only a bounded number of
   readlink expansions can occur.  ".." is collapsed against the already
   canonical prefix, which is its true parent. *)
let canonical_parents t path =
  let fs = Kernel.fs t.kernel in
  let component_cost = (Kernel.cost t.kernel).Idbox_kernel.Cost.name_cache_ns in
  let join_canonical resolved comp =
    if String.equal resolved "/" then "/" ^ comp else resolved ^ "/" ^ comp
  in
  let rec go resolved comps expansions =
    match comps with
    | [] -> resolved
    | [ final ] -> join_canonical resolved final
    | comp :: rest ->
      Kernel.charge t.kernel component_cost;
      if String.equal comp ".." then go (Path.dirname resolved) rest expansions
      else
        let candidate = join_canonical resolved comp in
        (match Fs.lstat fs ~uid:0 candidate with
         | Ok st
           when st.Fs.st_kind = Idbox_vfs.Inode.Symlink
                && expansions < Fs.symlink_limit ->
           (match Fs.readlink fs ~uid:0 candidate with
            | Ok target ->
              if Path.is_absolute target then
                go "/" (Path.components target @ rest) (expansions + 1)
              else go resolved (Path.components target @ rest) (expansions + 1)
            | Error _ -> go candidate rest expansions)
         | Ok _ | Error _ -> go candidate rest expansions)
  in
  let p = Path.normalize path in
  if String.equal p "/" then "/" else go "/" (Path.components p) 0

(* Follow the symlink chain of [path] itself (ancestors are made
   canonical first).  Also returns the final object's stat so callers
   need not repeat the lstat. *)
let resolve_final_ex t path =
  let rec go path depth =
    match delegate t (Syscall.Lstat path) with
    | Ok (Syscall.Stat_v st)
      when st.Fs.st_kind = Idbox_vfs.Inode.Symlink && depth < Fs.symlink_limit ->
      (match delegate t (Syscall.Readlink path) with
       | Ok (Syscall.Str target) ->
         (* The expanded target may itself live behind symlinked
            ancestors: canonicalize before the next hop. *)
         go (canonical_parents t (Path.join (Path.dirname path) target)) (depth + 1)
       | Ok _ | Error _ -> (path, Some st))
    | Ok (Syscall.Stat_v st) -> (path, Some st)
    | Ok _ | Error _ -> (path, None)
  in
  go (canonical_parents t path) 0

let resolve_final t path = fst (resolve_final_ex t path)

let governing_dir t path = Path.dirname (resolve_final t path)

let read_acl_file t dir =
  let acl_path = Path.join dir acl_filename in
  match delegate t (Syscall.Open { path = acl_path; flags = Fs.rdonly; mode = 0 }) with
  | Error _ -> None
  | Ok (Syscall.Int fd) ->
    (* Accumulate in a Buffer: with [acc ^ chunk] a large ACL costs
       O(n²) in host time, which the large-ACL bench case makes
       visible. *)
    let buf = Buffer.create 4096 in
    let rec slurp () =
      match delegate t (Syscall.Read { fd; len = 4096 }) with
      | Ok (Syscall.Data "") -> ()
      | Ok (Syscall.Data chunk) ->
        Buffer.add_string buf chunk;
        slurp ()
      | Ok _ | Error _ -> ()
    in
    slurp ();
    let text = Buffer.contents buf in
    ignore (delegate t (Syscall.Close fd));
    (match Acl.of_string text with
     | Ok acl -> Some acl
     | Error _ ->
       (* A corrupt ACL file grants nothing: fail closed. *)
       Some Acl.empty)
  | Ok _ -> None

let acl_token t dir =
  let acl_path = Path.join dir acl_filename in
  match delegate t (Syscall.Lstat acl_path) with
  | Ok (Syscall.Stat_v st) -> Some (st.Fs.st_ino, st.Fs.st_mtime)
  | Ok _ | Error _ -> None

let metric t name =
  Idbox_kernel.Metrics.incr
    (Idbox_kernel.Metrics.counter (Kernel.metrics t.kernel) name)

let dir_acl t dir =
  let dir = Path.normalize dir in
  let token = acl_token t dir in
  match Hashtbl.find_opt t.cache dir with
  | Some cached when cached.token = token ->
    metric t "acl.cache.hit";
    cached.acl
  | Some _ | None ->
    metric t "acl.cache.miss";
    let acl = if token = None then None else read_acl_file t dir in
    Hashtbl.replace t.cache dir { token; acl };
    acl

let charge_acl_eval t acl =
  let cost = Kernel.cost t.kernel in
  let entries = List.length (Acl.entries acl) in
  metric t "acl.eval";
  Idbox_kernel.Metrics.add
    (Idbox_kernel.Metrics.counter (Kernel.metrics t.kernel) "acl.eval.entries")
    entries;
  Kernel.charge t.kernel
    (Int64.add cost.Cost.acl_check_base
       (Int64.mul (Int64.of_int entries) cost.Cost.acl_check_entry))

(* Unix-permission fallback: the visitor is evaluated as [nobody]
   against the object's stat. *)
let nobody_allows_stat (st : Fs.stat) right =
  let check access =
    Perm.check ~uid:Account.nobody_uid ~owner:st.Fs.st_uid ~mode:st.Fs.st_mode
      access
  in
  match right with
  | Right.Read | Right.List -> check Perm.R
  | Right.Write | Right.Delete -> check Perm.W
  | Right.Execute -> check Perm.X
  | Right.Admin -> false

let stat_of t path =
  match delegate t (Syscall.Lstat path) with
  | Ok (Syscall.Stat_v st) -> Some st
  | Ok _ | Error _ -> None

let check_with_fallback t ~identity ~dir ~object_stat right =
  match dir_acl t dir with
  | Some acl ->
    charge_acl_eval t acl;
    if Acl.check acl identity right then Ok () else Error Errno.EACCES
  | None ->
    (match object_stat () with
     | Some st when nobody_allows_stat st right -> Ok ()
     | Some _ | None -> Error Errno.EACCES)

let check_in_dir t ~identity ~dir right =
  let dir = Path.normalize dir in
  check_with_fallback t ~identity ~dir ~object_stat:(fun () -> stat_of t dir) right

let check_object t ~identity ~path right =
  let final, st = resolve_final_ex t path in
  let dir = Path.dirname final in
  let object_stat () =
    (* Fall back against the object itself when it exists, else against
       the directory that would contain it. *)
    match st with Some _ -> st | None -> stat_of t dir
  in
  check_with_fallback t ~identity ~dir ~object_stat right

let reserve_in_dir t ~identity ~dir =
  match dir_acl t (Path.normalize dir) with
  | None -> None
  | Some acl ->
    charge_acl_eval t acl;
    Acl.reserve_for acl identity

type mkdir_plan =
  | Fresh_acl of Acl.t
  | Inherit_acl of Acl.t option

let plan_mkdir t ~identity ~parent =
  match reserve_in_dir t ~identity ~dir:parent with
  | Some grant ->
    let entry =
      Idbox_acl.Entry.make ~pattern:(Principal.to_string identity) grant
    in
    Ok (Fresh_acl (Acl.of_entries [ entry ]))
  | None ->
    (match check_in_dir t ~identity ~dir:parent Right.Write with
     | Ok () -> Ok (Inherit_acl (dir_acl t (Path.normalize parent)))
     | Error e -> Error e)

let invalidate t ~dir =
  metric t "acl.cache.invalidate";
  Hashtbl.remove t.cache (Path.normalize dir)

let write_acl t ~dir acl =
  let dir = Path.normalize dir in
  let acl_path = Path.join dir acl_filename in
  let text = Acl.to_string acl in
  let flags = Fs.wronly_create in
  match delegate t (Syscall.Open { path = acl_path; flags; mode = 0o600 }) with
  | Error e -> Error e
  | Ok (Syscall.Int fd) ->
    let write_res = delegate t (Syscall.Write { fd; data = text }) in
    ignore (delegate t (Syscall.Close fd));
    (match write_res with
     | Ok _ ->
       Hashtbl.replace t.cache dir { token = acl_token t dir; acl = Some acl };
       Ok ()
     | Error e -> Error e)
  | Ok _ -> Error Errno.EINVAL
