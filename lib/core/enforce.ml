module Kernel = Idbox_kernel.Kernel
module View = Idbox_kernel.View
module Syscall = Idbox_kernel.Syscall
module Cost = Idbox_kernel.Cost
module Metrics = Idbox_kernel.Metrics
module Acl = Idbox_acl.Acl
module Right = Idbox_acl.Right
module Rights = Idbox_acl.Rights
module Principal = Idbox_identity.Principal
module Path = Idbox_vfs.Path
module Errno = Idbox_vfs.Errno
module Fs = Idbox_vfs.Fs
module Perm = Idbox_vfs.Perm
module Account = Idbox_kernel.Account
module Policy = Idbox_kernel.Policy
module Delegation = Idbox_auth.Delegation
module Expiry = Idbox_auth.Expiry

(* How a cached ACL is known to still be current.  With caching on, the
   token is the governing directory's (ino, generation): the VFS bumps
   the generation on every namespace- or ACL-relevant mutation, so one
   host-side integer compare revalidates — no delegated syscall.  With
   caching off, it is the legacy attribute check against the ACL file's
   (ino, mtime), which pays a delegated [Lstat] per check. *)
type token =
  | Dir_gen of (int * int) option  (** [None]: no such directory. *)
  | Acl_attr of (int * int64) option  (** [None]: no ACL file existed. *)

type cached = {
  token : token;
  acl : Acl.t option;
}

(* A cached name resolution, valid while the global mutation generation
   is unchanged (any rename/link/unlink anywhere may retarget a path). *)
type name_cached = {
  nc_gen : int;
  nc_final : string;
}

(* A cached verdict for (dir, principal, right), valid while the
   governing directory's generation is unchanged.  Only ACL-backed
   verdicts are cached: the nobody fallback depends on the individual
   object's stat, not on the directory. *)
type decision_cached = {
  dc_ino : int;
  dc_gen : int;
  dc_allowed : bool;
}

(* A memoized delegation-chain verdict, valid while the revocation
   store's generation is unchanged (any revoke or gossip merge bumps
   it).  Only [Ok] summaries are cached: a rejected chain is rejected
   again from scratch, so chaos counters stay honest, and expiry is
   rechecked on every hit because time moves while generations don't. *)
type chain_cached = {
  cc_gen : int;
  cc_summary : Delegation.summary;
}

type t = {
  kernel : Kernel.t;
  sup : View.t;
  cache : (string, cached) Hashtbl.t;
  names : (string, name_cached) Hashtbl.t;
  decisions : (string, decision_cached) Hashtbl.t;
  chains : (string, chain_cached) Hashtbl.t;
  in_kernel : bool;
  caching : bool;
  bytecode : bool;
  (* The installed decision program, its compile latch (one compile
     attempt per generation — a rejected compile must not retry until
     the filesystem actually changes), and the test-only corruption
     hook for proving the verifier fails closed. *)
  mutable bc_prog : Policy.t option;
  mutable bc_attempt_gen : int;
  mutable bc_tamper : (Policy.t -> Policy.t) option;
  c_gen_check : int64;
  c_chain_hop : int64;
  c_bc_check : int64;
  c_bc_compile : int64;
  (* Counter handles are interned once here: the check path must not pay
     a string-keyed registry lookup per call. *)
  m_acl_hit : Metrics.counter;
  m_acl_miss : Metrics.counter;
  m_acl_inval : Metrics.counter;
  m_name_hit : Metrics.counter;
  m_name_miss : Metrics.counter;
  m_dec_hit : Metrics.counter;
  m_dec_miss : Metrics.counter;
  m_eval : Metrics.counter;
  m_eval_entries : Metrics.counter;
  m_read_fail : Metrics.counter;
  m_chain_hit : Metrics.counter;
  m_chain_miss : Metrics.counter;
  m_deleg_ok : Metrics.counter;
  m_bc_hit : Metrics.counter;
  m_bc_stale : Metrics.counter;
  m_bc_fallback : Metrics.counter;
  m_bc_recompile : Metrics.counter;
  m_bc_reject : Metrics.counter;
}

let acl_filename = Acl.filename

let create ?(in_kernel = false) ?(caching = true) ?bytecode kernel ~supervisor
    () =
  (* Register the ACL basename with the VFS: content writes land through
     file descriptors, so the generation bump happens at open time. *)
  Fs.watch_basename (Kernel.fs kernel) acl_filename;
  let c name = Metrics.counter (Kernel.metrics kernel) name in
  {
    kernel;
    sup = supervisor;
    cache = Hashtbl.create 64;
    names = Hashtbl.create 64;
    decisions = Hashtbl.create 64;
    chains = Hashtbl.create 16;
    in_kernel;
    caching;
    (* Bytecode rides the same generation infrastructure the caches
       do; it defaults on exactly when they are. *)
    bytecode = (match bytecode with Some b -> b | None -> caching);
    bc_prog = None;
    bc_attempt_gen = -1;
    bc_tamper = None;
    c_gen_check = (Kernel.cost kernel).Cost.gen_check_ns;
    c_chain_hop = (Kernel.cost kernel).Cost.chain_hop_ns;
    c_bc_check = (Kernel.cost kernel).Cost.bytecode_check_ns;
    c_bc_compile = (Kernel.cost kernel).Cost.bytecode_compile_ns;
    m_acl_hit = c "acl.cache.hit";
    m_acl_miss = c "acl.cache.miss";
    m_acl_inval = c "acl.cache.invalidate";
    m_name_hit = c "enforce.name.hit";
    m_name_miss = c "enforce.name.miss";
    m_dec_hit = c "enforce.decision.hit";
    m_dec_miss = c "enforce.decision.miss";
    m_eval = c "acl.eval";
    m_eval_entries = c "acl.eval.entries";
    m_read_fail = c "acl.read.fail";
    m_chain_hit = c "enforce.chain.hit";
    m_chain_miss = c "enforce.chain.miss";
    m_deleg_ok = c "auth.delegation.ok";
    m_bc_hit = c "kernel.bytecode.hit";
    m_bc_stale = c "kernel.bytecode.stale";
    m_bc_fallback = c "kernel.bytecode.fallback";
    m_bc_recompile = c "kernel.bytecode.recompile";
    m_bc_reject = c "kernel.bytecode.reject";
  }

(* ------------------------------------------------------------------ *)
(* Compiled-policy bytecode.                                           *)

(* One compile attempt per generation: compilation is charged flat at
   [bytecode_compile_ns] and its outcome — installed program or
   verifier rejection (fail closed to the interpreter) — is latched
   until the filesystem actually changes again. *)
let recompile_bytecode t ~gen =
  if t.bc_attempt_gen <> gen then begin
    t.bc_attempt_gen <- gen;
    Kernel.charge t.kernel t.c_bc_compile;
    match
      Policy_compile.compile ?tamper:t.bc_tamper (Kernel.fs t.kernel)
        ~uid:t.sup.View.uid
    with
    | Ok p ->
      Metrics.incr t.m_bc_recompile;
      t.bc_prog <- Some p;
      Kernel.set_policy t.kernel (Some p)
    | Error _ ->
      Metrics.incr t.m_bc_reject;
      t.bc_prog <- None;
      Kernel.set_policy t.kernel None
  end

let refresh_bytecode t =
  if t.bytecode then begin
    let gen = Fs.generation (Kernel.fs t.kernel) in
    match t.bc_prog with
    | Some p when Policy.generation p = gen -> ()
    | Some _ | None -> recompile_bytecode t ~gen
  end

let set_bytecode_tamper t f =
  t.bc_tamper <- f;
  (* Drop the resident program and the latch so the next consult
     recompiles under the new corruption. *)
  t.bc_prog <- None;
  t.bc_attempt_gen <- -1;
  Kernel.set_policy t.kernel None

let bytecode_program t = t.bc_prog

(* The syscall-entry fast path: one generation compare, then the
   program answers without touching the interpreter.  [None] sends the
   check to the interpreter — because bytecode is off, the program is
   stale or rejected, or it honestly answered [Unknown]. *)
let bytecode_consult t kind ~identity right =
  if not t.bytecode then None
  else begin
    let gen = Fs.generation (Kernel.fs t.kernel) in
    let evaluate p =
      Kernel.charge t.kernel t.c_bc_check;
      let principal = Principal.to_string identity in
      let right_bit = Policy_compile.right_bit right in
      let v =
        match kind with
        | `Object path -> Policy.eval_object p ~principal ~path ~right_bit
        | `Dir dir -> Policy.eval_in_dir p ~principal ~dir ~right_bit
      in
      match v with
      | Policy.Allow ->
        Metrics.incr t.m_bc_hit;
        Some (Ok ())
      | Policy.Deny ->
        Metrics.incr t.m_bc_hit;
        Some (Error Errno.EACCES)
      | Policy.Unknown ->
        Metrics.incr t.m_bc_fallback;
        None
    in
    match t.bc_prog with
    | Some p when Policy.generation p = gen -> evaluate p
    | Some _ ->
      (* Stale: the interpreter serves this check; the recompile
         happens here, off the per-check fast path. *)
      Metrics.incr t.m_bc_stale;
      recompile_bytecode t ~gen;
      None
    | None ->
      recompile_bytecode t ~gen;
      (match t.bc_prog with
       | Some p when Policy.generation p = gen -> evaluate p
       | Some _ | None -> None)
  end

(* A user-level supervisor pays two context switches to make its own
   system calls; an in-kernel implementation (the Fig. 6 ablation) pays
   only the direct cost. *)
let delegate t req =
  if t.in_kernel then Kernel.execute t.kernel t.sup req
  else Kernel.delegate t.kernel t.sup req

(* Resolve every ancestor symlink of [path], leaving the final component
   alone.  This is the supervisor's name-cache walk: lookups go straight
   at the (supervisor-mirrored) filesystem structure and are charged one
   path-component cost each, like dcache hits; only a bounded number of
   readlink expansions can occur.  ".." is collapsed against the already
   canonical prefix, which is its true parent. *)
let canonical_parents t path =
  let fs = Kernel.fs t.kernel in
  let component_cost = (Kernel.cost t.kernel).Idbox_kernel.Cost.name_cache_ns in
  let join_canonical resolved comp =
    if String.equal resolved "/" then "/" ^ comp else resolved ^ "/" ^ comp
  in
  let rec go resolved comps expansions =
    match comps with
    | [] -> resolved
    | [ final ] -> join_canonical resolved final
    | comp :: rest ->
      Kernel.charge t.kernel component_cost;
      if String.equal comp ".." then go (Path.dirname resolved) rest expansions
      else
        let candidate = join_canonical resolved comp in
        (match Fs.lstat fs ~uid:0 candidate with
         | Ok st
           when st.Fs.st_kind = Idbox_vfs.Inode.Symlink
                && expansions < Fs.symlink_limit ->
           (match Fs.readlink fs ~uid:0 candidate with
            | Ok target ->
              if Path.is_absolute target then
                go "/" (Path.components target @ rest) (expansions + 1)
              else go resolved (Path.components target @ rest) (expansions + 1)
            | Error _ -> go candidate rest expansions)
         | Ok _ | Error _ -> go candidate rest expansions)
  in
  let p = Path.normalize path in
  if String.equal p "/" then "/" else go "/" (Path.components p) 0

(* Follow the symlink chain of [path] itself (ancestors are made
   canonical first).  Also returns the final object's stat so callers
   need not repeat the lstat. *)
let resolve_final_ex t path =
  let rec go path depth =
    match delegate t (Syscall.Lstat path) with
    | Ok (Syscall.Stat_v st)
      when st.Fs.st_kind = Idbox_vfs.Inode.Symlink && depth < Fs.symlink_limit ->
      (match delegate t (Syscall.Readlink path) with
       | Ok (Syscall.Str target) ->
         (* The expanded target may itself live behind symlinked
            ancestors: canonicalize before the next hop. *)
         go (canonical_parents t (Path.join (Path.dirname path) target)) (depth + 1)
       | Ok _ | Error _ -> (path, Some st))
    | Ok (Syscall.Stat_v st) -> (path, Some st)
    | Ok _ | Error _ -> (path, None)
  in
  go (canonical_parents t path) 0

(* The name cache: canonical path of the whole resolution, validated
   against the global mutation generation.  A hit replaces the ancestor
   walk plus the delegated final-lstat loop with one generation check;
   it does not know the final object's stat (the [bool] is false), so
   callers needing one must fetch it lazily. *)
let resolved t path =
  let key = Path.normalize path in
  if not t.caching then
    let final, st = resolve_final_ex t key in
    (final, st, true)
  else begin
    let gen = Fs.generation (Kernel.fs t.kernel) in
    match Hashtbl.find_opt t.names key with
    | Some n when n.nc_gen = gen ->
      Metrics.incr t.m_name_hit;
      Kernel.charge t.kernel t.c_gen_check;
      (n.nc_final, None, false)
    | Some _ | None ->
      Metrics.incr t.m_name_miss;
      let final, st = resolve_final_ex t key in
      Hashtbl.replace t.names key { nc_gen = gen; nc_final = final };
      (final, st, true)
  end

let resolve_final t path =
  let final, _, _ = resolved t path in
  final

let governing_dir t path = Path.dirname (resolve_final t path)

let read_acl_file t dir =
  let acl_path = Path.join dir acl_filename in
  match delegate t (Syscall.Open { path = acl_path; flags = Fs.rdonly; mode = 0 }) with
  | Error _ -> None
  | Ok (Syscall.Int fd) ->
    (* Accumulate in a Buffer: with [acc ^ chunk] a large ACL costs
       O(n²) in host time, which the large-ACL bench case makes
       visible. *)
    let buf = Buffer.create 4096 in
    let truncated = ref false in
    let rec slurp () =
      match delegate t (Syscall.Read { fd; len = 4096 }) with
      | Ok (Syscall.Data "") -> ()
      | Ok (Syscall.Data chunk) ->
        Buffer.add_string buf chunk;
        slurp ()
      | Ok _ | Error _ ->
        (* A read error mid-slurp leaves a silently truncated text — and
           a truncated ACL can parse as a smaller but *valid* one.  Fail
           closed instead of granting from a partial list. *)
        truncated := true
    in
    slurp ();
    let text = Buffer.contents buf in
    ignore (delegate t (Syscall.Close fd));
    if !truncated then begin
      Metrics.incr t.m_read_fail;
      Some Acl.empty
    end
    else (
      match Acl.of_string text with
      | Ok acl -> Some acl
      | Error _ ->
        (* A corrupt ACL file grants nothing: fail closed. *)
        Some Acl.empty)
  | Ok _ -> None

let acl_token t dir =
  let acl_path = Path.join dir acl_filename in
  match delegate t (Syscall.Lstat acl_path) with
  | Ok (Syscall.Stat_v st) -> Some (st.Fs.st_ino, st.Fs.st_mtime)
  | Ok _ | Error _ -> None

(* The current validation token for [dir] under this engine's mode. *)
let dir_token t dir =
  if t.caching then begin
    Kernel.charge t.kernel t.c_gen_check;
    Dir_gen (Fs.dir_token (Kernel.fs t.kernel) dir)
  end
  else Acl_attr (acl_token t dir)

let dir_acl t dir =
  let dir = Path.normalize dir in
  let token = dir_token t dir in
  match Hashtbl.find_opt t.cache dir with
  | Some cached when cached.token = token ->
    Metrics.incr t.m_acl_hit;
    cached.acl
  | Some _ | None ->
    Metrics.incr t.m_acl_miss;
    let acl =
      match token with
      | Acl_attr None -> None (* no ACL file *)
      | Dir_gen None -> None (* no such directory *)
      | Acl_attr (Some _) | Dir_gen (Some _) -> read_acl_file t dir
    in
    Hashtbl.replace t.cache dir { token; acl };
    acl

let charge_acl_eval t acl =
  let cost = Kernel.cost t.kernel in
  let entries = List.length (Acl.entries acl) in
  Metrics.incr t.m_eval;
  Metrics.add t.m_eval_entries entries;
  Kernel.charge t.kernel
    (Int64.add cost.Cost.acl_check_base
       (Int64.mul (Int64.of_int entries) cost.Cost.acl_check_entry))

(* Unix-permission fallback: the visitor is evaluated as [nobody]
   against the object's stat. *)
let nobody_allows_stat (st : Fs.stat) right =
  let check access =
    Perm.check ~uid:Account.nobody_uid ~owner:st.Fs.st_uid ~mode:st.Fs.st_mode
      access
  in
  match right with
  | Right.Read | Right.List -> check Perm.R
  | Right.Write | Right.Delete -> check Perm.W
  | Right.Execute -> check Perm.X
  | Right.Admin -> false

let stat_of t path =
  match delegate t (Syscall.Lstat path) with
  | Ok (Syscall.Stat_v st) -> Some st
  | Ok _ | Error _ -> None

let decision_key dir identity right =
  Printf.sprintf "%s\x00%s\x00%c" dir
    (Principal.to_string identity)
    (Right.to_char right)

let check_with_fallback t ~identity ~dir ~object_stat right =
  (* [compute] also reports whether an ACL governed the verdict: only
     those verdicts are a pure function of (dir, principal, right). *)
  let compute () =
    match dir_acl t dir with
    | Some acl ->
      charge_acl_eval t acl;
      ((if Acl.check acl identity right then Ok () else Error Errno.EACCES), true)
    | None ->
      ( (match object_stat () with
        | Some st when nobody_allows_stat st right -> Ok ()
        | Some _ | None -> Error Errno.EACCES),
        false )
  in
  if not t.caching then fst (compute ())
  else
    match Fs.dir_token (Kernel.fs t.kernel) dir with
    | None -> fst (compute ())
    | Some (ino, gen) ->
      Kernel.charge t.kernel t.c_gen_check;
      let key = decision_key dir identity right in
      (match Hashtbl.find_opt t.decisions key with
       | Some d when d.dc_ino = ino && d.dc_gen = gen ->
         Metrics.incr t.m_dec_hit;
         if d.dc_allowed then Ok () else Error Errno.EACCES
       | Some _ | None ->
         Metrics.incr t.m_dec_miss;
         let verdict, acl_backed = compute () in
         if acl_backed then
           Hashtbl.replace t.decisions key
             { dc_ino = ino; dc_gen = gen; dc_allowed = verdict = Ok () };
         verdict)

let check_in_dir t ~identity ~dir right =
  let dir = Path.normalize dir in
  match bytecode_consult t (`Dir dir) ~identity right with
  | Some verdict -> verdict
  | None ->
    check_with_fallback t ~identity ~dir
      ~object_stat:(fun () -> stat_of t dir)
      right

let check_object_interp t ~identity ~path right =
  let final, st, authoritative = resolved t path in
  let dir = Path.dirname final in
  let object_stat () =
    (* Fall back against the object itself when it exists, else against
       the directory that would contain it.  After a name-cache hit the
       final stat is unknown and fetched lazily; after a fresh resolve,
       [st = None] already proved the object absent. *)
    match st with
    | Some _ -> st
    | None when authoritative -> stat_of t dir
    | None -> (match stat_of t final with Some s -> Some s | None -> stat_of t dir)
  in
  check_with_fallback t ~identity ~dir ~object_stat right

let check_object t ~identity ~path right =
  match bytecode_consult t (`Object (Path.normalize path)) ~identity right with
  | Some verdict -> verdict
  | None -> check_object_interp t ~identity ~path right

let reserve_in_dir t ~identity ~dir =
  match dir_acl t (Path.normalize dir) with
  | None -> None
  | Some acl ->
    charge_acl_eval t acl;
    Acl.reserve_for acl identity

type mkdir_plan =
  | Fresh_acl of Acl.t
  | Inherit_acl of Acl.t option

let plan_mkdir t ~identity ~parent =
  match reserve_in_dir t ~identity ~dir:parent with
  | Some grant ->
    let entry =
      Idbox_acl.Entry.make ~pattern:(Principal.to_string identity) grant
    in
    Ok (Fresh_acl (Acl.of_entries [ entry ]))
  | None ->
    (match check_in_dir t ~identity ~dir:parent Right.Write with
     | Ok () -> Ok (Inherit_acl (dir_acl t (Path.normalize parent)))
     | Error e -> Error e)

let invalidate t ~dir =
  let dir = Path.normalize dir in
  Metrics.incr t.m_acl_inval;
  Hashtbl.remove t.cache dir;
  (* Cached verdicts for this directory go with it. *)
  let prefix = dir ^ "\x00" in
  let doomed =
    Hashtbl.fold
      (fun k _ acc -> if String.starts_with ~prefix k then k :: acc else acc)
      t.decisions []
  in
  List.iter (Hashtbl.remove t.decisions) doomed

let write_acl t ~dir acl =
  let dir = Path.normalize dir in
  let acl_path = Path.join dir acl_filename in
  let text = Acl.to_string acl in
  let flags = Fs.wronly_create in
  match delegate t (Syscall.Open { path = acl_path; flags; mode = 0o600 }) with
  | Error e -> Error e
  | Ok (Syscall.Int fd) ->
    let write_res = delegate t (Syscall.Write { fd; data = text }) in
    ignore (delegate t (Syscall.Close fd));
    (match write_res with
     | Ok _ ->
       (* Re-prime with a post-write token: the open bumped the
          directory's generation, so stale decisions self-invalidate
          while the fresh ACL is served from cache. *)
       Hashtbl.replace t.cache dir { token = dir_token t dir; acl = Some acl };
       (* An ACL write is the canonical policy change (and the shape a
          replicated write arrives in): recompile eagerly, so the very
          next check is already on the fast path instead of paying a
          stale fallback first. *)
       if t.bytecode then
         recompile_bytecode t ~gen:(Fs.generation (Kernel.fs t.kernel));
       Ok ()
     | Error e -> Error e)
  | Ok _ -> Error Errno.EINVAL

(* ------------------------------------------------------------------ *)
(* Delegation chains.                                                  *)

let reject_chain t failure =
  Metrics.incr
    (Metrics.counter (Kernel.metrics t.kernel)
       ("auth.delegation.reject." ^ Delegation.failure_name failure));
  Error failure

let admit_ok t summary =
  Metrics.incr t.m_deleg_ok;
  Ok summary

(* Cold validation pays one {!Cost.t.chain_hop_ns} per hop — the keyed
   digest recompute plus structural checks; a memo hit pays one
   generation check, exactly like the name/ACL/decision caches. *)
let validate_cold t ~trusted ~revocations ~now ~holder chain =
  Kernel.charge t.kernel
    (Int64.mul (Int64.of_int (List.length chain)) t.c_chain_hop);
  Delegation.validate ~trusted ~revocations ~now ~holder chain

let admit_chain t ~trusted ~revocations ~now ~holder chain =
  if not t.caching then (
    match validate_cold t ~trusted ~revocations ~now ~holder chain with
    | Ok s -> admit_ok t s
    | Error f -> reject_chain t f)
  else
    let key = Delegation.chain_key ~holder chain in
    let gen = Delegation.Revocations.generation revocations in
    match Hashtbl.find_opt t.chains key with
    | Some m when m.cc_gen = gen ->
      Kernel.charge t.kernel t.c_gen_check;
      if Expiry.valid_at ~now ~expires:m.cc_summary.Delegation.sum_expires
      then begin
        Metrics.incr t.m_chain_hit;
        admit_ok t m.cc_summary
      end
      else begin
        (* Time, unlike revocation, invalidates silently: drop the memo
           so the next presentation re-pays the cold path. *)
        Hashtbl.remove t.chains key;
        reject_chain t Delegation.F_expired
      end
    | Some _ | None ->
      Metrics.incr t.m_chain_miss;
      (match validate_cold t ~trusted ~revocations ~now ~holder chain with
       | Ok s ->
         Hashtbl.replace t.chains key { cc_gen = gen; cc_summary = s };
         admit_ok t s
       | Error f -> reject_chain t f)

(* After a crash-recovery the revocation store is rebuilt from stable
   storage and its generation counter restarts: a pre-crash memo could
   coincidentally validate against an unrelated generation value.  The
   recovering server drops the memo outright — fail-closed and cheap. *)
let drop_chains t = Hashtbl.reset t.chains

let check_delegated t ~identity ~grant ~prefix ~path right =
  if not (Rights.mem right grant) then Error Errno.EACCES
  else if not (Delegation.scope_contains ~prefix path) then Error Errno.EACCES
  else check_object t ~identity ~path right
