(** The policy compiler: snapshot the reachable ACL universe into a
    verified {!Idbox_kernel.Policy} decision program.

    Compilation walks the filesystem host-side with the supervisor's
    [uid], mirroring the enforcement engine's resolution semantics
    (ancestor symlinks, the shared expansion budget, unparseable ACLs
    compiled as deny-all, unreadable ones as "no ACL"), builds the
    perfect-hash tables by seed trial, then runs the verifier: the
    structural check ({!Idbox_kernel.Policy.check_program}) plus a
    seeded semantic sample that re-derives verdicts from the live
    filesystem and rejects any disagreement.  A rejected or oversized
    program is an [Error] — the caller keeps the interpreter (fail
    closed, never open).

    Anything that is not a pure function of (governing ACL, principal,
    right) — nobody-fallback directories, unresolvable symlinks,
    unenumerable subtrees — is compiled as "not answerable", so the
    program returns [Unknown] there and the interpreter decides. *)

val right_bit : Idbox_acl.Right.t -> int
(** The bit position a right occupies in program masks: its index in
    {!Idbox_acl.Right.all}.  The VM itself is rights-agnostic. *)

val rights_mask : Idbox_acl.Rights.t -> int
(** A rights set as a program mask. *)

val compile :
  ?tamper:(Idbox_kernel.Policy.t -> Idbox_kernel.Policy.t) ->
  ?verify_seed:int ->
  ?verify_samples:int ->
  Idbox_vfs.Fs.t ->
  uid:int ->
  (Idbox_kernel.Policy.t, string) result
(** Compile the current filesystem state as seen by [uid] (the
    supervisor's uid — access the engine could not make must not leak
    into the program).  [tamper], applied between construction and
    verification, exists so tests can prove the verifier rejects
    corrupted programs.  [verify_seed] / [verify_samples] parameterize
    the semantic sample.  The returned program carries the VFS
    generation it snapshot; it is valid exactly while that generation
    holds. *)
