module Kernel = Idbox_kernel.Kernel
module View = Idbox_kernel.View
module Syscall = Idbox_kernel.Syscall
module Trace = Idbox_kernel.Trace
module Metrics = Idbox_kernel.Metrics
module Program = Idbox_kernel.Program
module Account = Idbox_kernel.Account
module Fd_table = Idbox_kernel.Fd_table
module Tracer = Idbox_ptrace.Tracer
module Iochannel = Idbox_ptrace.Iochannel
module Acl = Idbox_acl.Acl
module Entry = Idbox_acl.Entry
module Right = Idbox_acl.Right
module Rights = Idbox_acl.Rights
module Principal = Idbox_identity.Principal
module Path = Idbox_vfs.Path
module Errno = Idbox_vfs.Errno
module Fs = Idbox_vfs.Fs
module Inode = Idbox_vfs.Inode

let log_src = Logs.Src.create "idbox.box" ~doc:"identity box supervisor"

module Log = (val Logs.src_log log_src)

(* A boxed process's open-file backing. *)
type backing =
  | Local of int  (** A descriptor in the supervisor's own table. *)
  | Remote_read of { rpath : string; driver : Remote.t; data : string }
  | Remote_write of { rpath : string; driver : Remote.t; buf : Buffer.t }

type vfile = {
  backing : backing;
  mutable vpos : int;
}

(* Per-tracee state the supervisor maintains (Parrot "must track a tree
   of processes [and] keep tables of open files"). *)
type vproc = {
  vpid : int;
  mutable vcwd : string;
  vfds : (int, vfile) Hashtbl.t;
  mutable next_vfd : int;
  passthrough : (int, unit) Hashtbl.t;
      (** Real kernel descriptors (pipe ends) the tracee may use
          directly: the kernel implements pipe semantics, including
          blocking, under the box's eye. *)
}

type t = {
  bx_kernel : Kernel.t;
  sup : View.t;
  bx_identity : Principal.t;
  enforce : Enforce.t;
  channel : Iochannel.t;
  vprocs : (int, vproc) Hashtbl.t;
  pending : (int, Syscall.result -> Syscall.result) Hashtbl.t;
  mounts : (string * Remote.t) list;
  bx_base : string;
  bx_home : string;
  bx_passwd : string;
  small_io : int;
  bx_audit : Audit.t option;
  mutable bx_handler : Trace.handler option;
  m_delegate : Metrics.counter;
  m_trap : Metrics.counter;
  m_pass : Metrics.counter;
  m_deny : Metrics.counter;
  m_nullify : Metrics.counter;
  m_rewrite : Metrics.counter;
}

let identity t = t.bx_identity
let identity_string t = Principal.to_string t.bx_identity
let home t = t.bx_home
let base t = t.bx_base
let passwd_path t = t.bx_passwd
let supervisor_view t = t.sup
let enforcer t = t.enforce
let kernel t = t.bx_kernel
let member t pid = Hashtbl.mem t.vprocs pid

let handler t =
  match t.bx_handler with Some h -> h | None -> assert false

let delegate t req =
  Metrics.incr t.m_delegate;
  Kernel.delegate t.bx_kernel t.sup req

(* ------------------------------------------------------------------ *)
(* Path handling.                                                      *)
(* ------------------------------------------------------------------ *)

let vproc_of t pid =
  match Hashtbl.find_opt t.vprocs pid with
  | Some vp -> vp
  | None ->
    let vp =
      { vpid = pid; vcwd = t.bx_home; vfds = Hashtbl.create 8; next_vfd = 1000;
        passthrough = Hashtbl.create 4 }
    in
    Hashtbl.replace t.vprocs pid vp;
    vp

(* Canonical absolute path for a tracee-supplied path: joined against
   the virtual cwd, ancestor symlinks resolved (so the ACL check and the
   delegated action always name the same object — the parent flavour of
   Garfinkel pitfall #2), and the paper's /etc/passwd redirection
   applied. *)
let canon t vp path =
  let abs = Enforce.canonical_parents t.enforce (Path.join vp.vcwd path) in
  if String.equal abs "/etc/passwd" then t.bx_passwd else abs

let mount_of t abs =
  List.find_map
    (fun (prefix, driver) ->
      match Path.strip_prefix ~prefix abs with
      | Some rest -> Some (driver, rest)
      | None -> None)
    t.mounts

let is_acl_file abs = String.equal (Path.basename abs) Enforce.acl_filename

(* ------------------------------------------------------------------ *)
(* Entry-action helpers.                                               *)
(* ------------------------------------------------------------------ *)

(* Nullify the call and inject [result] at the exit stop. *)
let emulate t pid result =
  Hashtbl.replace t.pending pid (fun _ -> result);
  Trace.Rewrite Syscall.Getpid

let deny e = Trace.Deny e

let check t right ~object_path k =
  match Enforce.check_object t.enforce ~identity:t.bx_identity ~path:object_path right with
  | Ok () -> k ()
  | Error e -> deny e

let check_dir t right ~dir k =
  match Enforce.check_in_dir t.enforce ~identity:t.bx_identity ~dir right with
  | Ok () -> k ()
  | Error e -> deny e

(* Delete rights: the delete right, or write for the paper's plain
   [rwlax] ACLs where deletion falls under write. *)
let check_delete t ~dir k =
  match Enforce.check_in_dir t.enforce ~identity:t.bx_identity ~dir Right.Delete with
  | Ok () -> k ()
  | Error _ ->
    (match Enforce.check_in_dir t.enforce ~identity:t.bx_identity ~dir Right.Write with
     | Ok () -> k ()
     | Error e -> deny e)

let words_of_bytes n = (n + 7) / 8

(* ------------------------------------------------------------------ *)
(* Open files.                                                         *)
(* ------------------------------------------------------------------ *)

let alloc_vfd vp vfile =
  let vfd = vp.next_vfd in
  vp.next_vfd <- vfd + 1;
  Hashtbl.replace vp.vfds vfd vfile;
  vfd

(* An fd the box does not virtualize: a pipe end the kernel manages
   directly (blocking included).  Anything else is a bad descriptor. *)
let pass_or_badf vp fd =
  if Hashtbl.mem vp.passthrough fd then Trace.Pass else deny Errno.EBADF

let handle_open t pid vp path flags mode =
  let abs = canon t vp path in
  if is_acl_file abs then deny Errno.EACCES
  else
    match mount_of t abs with
    | Some (driver, rpath) ->
      if flags.Fs.wr && flags.Fs.rd then deny Errno.EINVAL
      else if flags.Fs.wr then
        let vfile =
          { backing = Remote_write { rpath; driver; buf = Buffer.create 256 };
            vpos = 0 }
        in
        emulate t pid (Ok (Syscall.Int (alloc_vfd vp vfile)))
      else
        (match driver.Remote.r_read rpath with
         | Error e -> deny e
         | Ok data ->
           let vfile = { backing = Remote_read { rpath; driver; data }; vpos = 0 } in
           emulate t pid (Ok (Syscall.Int (alloc_vfd vp vfile))))
    | None ->
      let do_open () =
        match delegate t (Syscall.Open { path = abs; flags; mode }) with
        | Error e -> deny e
        | Ok (Syscall.Int sfd) ->
          let vfd = alloc_vfd vp { backing = Local sfd; vpos = 0 } in
          emulate t pid (Ok (Syscall.Int vfd))
        | Ok _ -> deny Errno.EINVAL
      in
      if String.equal abs t.bx_passwd then
        (* The box's private /etc/passwd copy: readable by design (the
           redirection exists so whoami works), never writable. *)
        if flags.Fs.wr || flags.Fs.creat then deny Errno.EACCES else do_open ()
      else
        let need_read = flags.Fs.rd in
        let need_write = flags.Fs.wr || flags.Fs.creat in
        let after_read_check () =
          if need_write then check t Right.Write ~object_path:abs do_open
          else do_open ()
        in
        if need_read then check t Right.Read ~object_path:abs after_read_check
        else after_read_check ()

let handle_close t pid vp vfd =
  match Hashtbl.find_opt vp.vfds vfd with
  | None ->
    if Hashtbl.mem vp.passthrough vfd then begin
      Hashtbl.remove vp.passthrough vfd;
      Trace.Pass
    end
    else deny Errno.EBADF
  | Some vfile ->
    Hashtbl.remove vp.vfds vfd;
    (match vfile.backing with
     | Local sfd ->
       (match delegate t (Syscall.Close sfd) with
        | Ok _ -> emulate t pid (Ok Syscall.Unit)
        | Error e -> deny e)
     | Remote_read _ -> emulate t pid (Ok Syscall.Unit)
     | Remote_write { rpath; driver; buf } ->
       (match driver.Remote.r_write rpath (Buffer.contents buf) with
        | Ok () -> emulate t pid (Ok Syscall.Unit)
        | Error e -> deny e))

(* Serve a read of [len] bytes at the backing's notion of position.
   [advance] moves the sequential position on success. *)
let handle_read t pid vp vfd ~len ~at =
  match Hashtbl.find_opt vp.vfds vfd with
  | None -> pass_or_badf vp vfd
  | Some vfile ->
    (match vfile.backing with
     | Local sfd ->
       let req =
         match at with
         | None -> Syscall.Read { fd = sfd; len }
         | Some off -> Syscall.Pread { fd = sfd; off; len }
       in
       (match delegate t req with
        | Error e -> deny e
        | Ok (Syscall.Data data) ->
          if String.length data <= t.small_io then begin
            (* Small transfer: poke the bytes into the tracee. *)
            Kernel.note_peek_poke t.bx_kernel
              ~words:(words_of_bytes (String.length data));
            emulate t pid (Ok (Syscall.Data data))
          end
          else begin
            (* Bulk transfer: stage in the I/O channel and coerce the
               tracee into pulling it with a pread. *)
            let off = Iochannel.stage t.channel data in
            Trace.Rewrite
              (Syscall.Pread
                 { fd = Iochannel.channel_fd; off; len = String.length data })
          end
        | Ok _ -> deny Errno.EINVAL)
     | Remote_read { data; _ } ->
       let off = match at with None -> vfile.vpos | Some o -> o in
       let n = max 0 (min len (String.length data - off)) in
       let chunk = if n = 0 then "" else String.sub data off n in
       if at = None then vfile.vpos <- off + n;
       if n <= t.small_io then begin
         Kernel.note_peek_poke t.bx_kernel ~words:(words_of_bytes n);
         emulate t pid (Ok (Syscall.Data chunk))
       end
       else
         let coff = Iochannel.stage t.channel chunk in
         Trace.Rewrite
           (Syscall.Pread { fd = Iochannel.channel_fd; off = coff; len = n })
     | Remote_write _ -> deny Errno.EBADF)

let handle_write t pid vp vfd ~data ~at =
  match Hashtbl.find_opt vp.vfds vfd with
  | None -> pass_or_badf vp vfd
  | Some vfile ->
    let len = String.length data in
    (match vfile.backing with
     | Local sfd ->
       let req off =
         match off with
         | None -> Syscall.Write { fd = sfd; data }
         | Some off -> Syscall.Pwrite { fd = sfd; off; data }
       in
       if len <= t.small_io then begin
         (* Small transfer: peek the bytes out of the tracee. *)
         Kernel.note_peek_poke t.bx_kernel ~words:(words_of_bytes len);
         match delegate t (req at) with
         | Ok v -> emulate t pid (Ok v)
         | Error e -> deny e
       end
       else begin
         (* Bulk transfer: the tracee pwrites into the channel; at the
            exit stop the supervisor collects and performs the real
            write. *)
         let coff = Iochannel.reserve t.channel len in
         Hashtbl.replace t.pending pid (fun res ->
             match res with
             | Ok (Syscall.Int n) ->
               let payload = Iochannel.collect t.channel ~off:coff ~len:n in
               (match
                  delegate t
                    (match at with
                     | None -> Syscall.Write { fd = sfd; data = payload }
                     | Some off -> Syscall.Pwrite { fd = sfd; off; data = payload })
                with
                | Ok v -> Ok v
                | Error e -> Error e)
             | other -> other);
         Trace.Rewrite
           (Syscall.Pwrite { fd = Iochannel.channel_fd; off = coff; data })
       end
     | Remote_write { buf; _ } ->
       (match at with
        | Some _ -> deny Errno.ESPIPE
        | None ->
          Kernel.note_channel_copy t.bx_kernel ~bytes:len;
          Buffer.add_string buf data;
          vfile.vpos <- vfile.vpos + len;
          emulate t pid (Ok (Syscall.Int len)))
     | Remote_read _ -> deny Errno.EBADF)

let handle_lseek t pid vp vfd ~off ~whence =
  match Hashtbl.find_opt vp.vfds vfd with
  | None -> pass_or_badf vp vfd
  | Some vfile ->
    (match vfile.backing with
     | Local sfd ->
       (match delegate t (Syscall.Lseek { fd = sfd; off; whence }) with
        | Ok v -> emulate t pid (Ok v)
        | Error e -> deny e)
     | Remote_read { data; _ } ->
       let basepos =
         match whence with
         | Syscall.Seek_set -> 0
         | Syscall.Seek_cur -> vfile.vpos
         | Syscall.Seek_end -> String.length data
       in
       let npos = basepos + off in
       if npos < 0 then deny Errno.EINVAL
       else begin
         vfile.vpos <- npos;
         emulate t pid (Ok (Syscall.Int npos))
       end
     | Remote_write _ -> deny Errno.ESPIPE)

let handle_fstat t pid vp vfd =
  match Hashtbl.find_opt vp.vfds vfd with
  | None -> pass_or_badf vp vfd
  | Some vfile ->
    (match vfile.backing with
     | Local sfd ->
       (match delegate t (Syscall.Fstat sfd) with
        | Ok v -> emulate t pid (Ok v)
        | Error e -> deny e)
     | Remote_read { rpath; driver; _ } | Remote_write { rpath; driver; _ } ->
       (match driver.Remote.r_stat rpath with
        | Ok st -> emulate t pid (Ok (Syscall.Stat_v st))
        | Error e -> deny e))

(* ------------------------------------------------------------------ *)
(* Directory and metadata operations.                                  *)
(* ------------------------------------------------------------------ *)

let handle_stat t pid vp path ~follow =
  let abs = canon t vp path in
  match mount_of t abs with
  | Some (driver, rpath) ->
    (match driver.Remote.r_stat rpath with
     | Ok st -> emulate t pid (Ok (Syscall.Stat_v st))
     | Error e -> deny e)
  | None ->
    let do_stat () =
      let req = if follow then Syscall.Stat abs else Syscall.Lstat abs in
      match delegate t req with
      | Ok v -> emulate t pid (Ok v)
      | Error e -> deny e
    in
    if String.equal abs t.bx_passwd then do_stat ()
    else check t Right.List ~object_path:abs do_stat

let handle_mkdir t pid vp path mode =
  let abs = canon t vp path in
  if is_acl_file abs then deny Errno.EACCES
  else
    match mount_of t abs with
    | Some (driver, rpath) ->
      (match driver.Remote.r_mkdir rpath with
       | Ok () -> emulate t pid (Ok Syscall.Unit)
       | Error e -> deny e)
    | None ->
      let dir = Path.dirname abs in
      let proceed acl_for_new =
        match delegate t (Syscall.Mkdir { path = abs; mode }) with
        | Error e -> deny e
        | Ok _ ->
          (match acl_for_new with
           | None -> emulate t pid (Ok Syscall.Unit)
           | Some acl ->
             (match Enforce.write_acl t.enforce ~dir:abs acl with
              | Ok () -> emulate t pid (Ok Syscall.Unit)
              | Error e -> deny e))
      in
      (match Enforce.plan_mkdir t.enforce ~identity:t.bx_identity ~parent:dir with
       | Error e -> deny e
       | Ok (Enforce.Fresh_acl acl) -> proceed (Some acl)
       | Ok (Enforce.Inherit_acl inherited) -> proceed inherited)

let handle_rmdir t pid vp path =
  let abs = canon t vp path in
  match mount_of t abs with
  | Some (driver, rpath) ->
    (match driver.Remote.r_rmdir rpath with
     | Ok () -> emulate t pid (Ok Syscall.Unit)
     | Error e -> deny e)
  | None ->
    (* Deletion is governed by the parent, but the owner of a reserved
       namespace holds delete inside it and may retire it too. *)
    let check_either k =
      match check_delete t ~dir:(Path.dirname abs) (fun () -> Trace.Pass) with
      | Trace.Pass -> k ()
      | Trace.Deny _ | Trace.Rewrite _ -> check_delete t ~dir:abs k
    in
    check_either (fun () ->
        match delegate t (Syscall.Readdir abs) with
        | Error e -> deny e
        | Ok (Syscall.Names names) ->
          let real =
            List.filter (fun n -> not (String.equal n Enforce.acl_filename)) names
          in
          if real <> [] then deny Errno.ENOTEMPTY
          else begin
            ignore
              (delegate t (Syscall.Unlink (Path.join abs Enforce.acl_filename)));
            Enforce.invalidate t.enforce ~dir:abs;
            match delegate t (Syscall.Rmdir abs) with
            | Ok _ -> emulate t pid (Ok Syscall.Unit)
            | Error e -> deny e
          end
        | Ok _ -> deny Errno.EINVAL)

let handle_unlink t pid vp path =
  let abs = canon t vp path in
  if is_acl_file abs then deny Errno.EACCES
  else
    match mount_of t abs with
    | Some (driver, rpath) ->
      (match driver.Remote.r_unlink rpath with
       | Ok () -> emulate t pid (Ok Syscall.Unit)
       | Error e -> deny e)
    | None ->
      let dir = Enforce.governing_dir t.enforce abs in
      check_delete t ~dir (fun () ->
          match delegate t (Syscall.Unlink abs) with
          | Ok _ -> emulate t pid (Ok Syscall.Unit)
          | Error e -> deny e)

let handle_readdir t pid vp path =
  let abs = canon t vp path in
  match mount_of t abs with
  | Some (driver, rpath) ->
    (match driver.Remote.r_readdir rpath with
     | Ok names -> emulate t pid (Ok (Syscall.Names names))
     | Error e -> deny e)
  | None ->
    check_dir t Right.List ~dir:abs (fun () ->
        match delegate t (Syscall.Readdir abs) with
        | Ok (Syscall.Names names) ->
          let visible =
            List.filter (fun n -> not (String.equal n Enforce.acl_filename)) names
          in
          emulate t pid (Ok (Syscall.Names visible))
        | Ok _ -> deny Errno.EINVAL
        | Error e -> deny e)

let handle_link t pid vp ~target ~path =
  let atarget = canon t vp target and apath = canon t vp path in
  if is_acl_file apath || is_acl_file atarget then deny Errno.EACCES
  else if mount_of t atarget <> None || mount_of t apath <> None then
    deny Errno.EXDEV
  else
    (* Hard links cannot be traced back to their target directory's ACL
       once created, so the box refuses links to objects the visitor
       cannot already read (Garfinkel pitfall #2). *)
    check t Right.Read ~object_path:atarget (fun () ->
        check_dir t Right.Write ~dir:(Path.dirname apath) (fun () ->
            match delegate t (Syscall.Link { target = atarget; path = apath }) with
            | Ok _ -> emulate t pid (Ok Syscall.Unit)
            | Error e -> deny e))

let handle_symlink t pid vp ~target ~path =
  let apath = canon t vp path in
  if is_acl_file apath then deny Errno.EACCES
  else if mount_of t apath <> None then deny Errno.EXDEV
  else
    check_dir t Right.Write ~dir:(Path.dirname apath) (fun () ->
        match delegate t (Syscall.Symlink { target; path = apath }) with
        | Ok _ -> emulate t pid (Ok Syscall.Unit)
        | Error e -> deny e)

let handle_readlink t pid vp path =
  let abs = canon t vp path in
  if mount_of t abs <> None then deny Errno.EINVAL
  else
    check_dir t Right.List ~dir:(Path.dirname abs) (fun () ->
        match delegate t (Syscall.Readlink abs) with
        | Ok v -> emulate t pid (Ok v)
        | Error e -> deny e)

let handle_rename t pid vp ~src ~dst =
  let asrc = canon t vp src and adst = canon t vp dst in
  if is_acl_file asrc || is_acl_file adst then deny Errno.EACCES
  else
    match (mount_of t asrc, mount_of t adst) with
    | Some (d1, r1), Some (d2, r2) when d1 == d2 ->
      (match d1.Remote.r_rename r1 r2 with
       | Ok () -> emulate t pid (Ok Syscall.Unit)
       | Error e -> deny e)
    | Some _, _ | _, Some _ -> deny Errno.EXDEV
    | None, None ->
      check_delete t ~dir:(Path.dirname asrc) (fun () ->
          check_dir t Right.Write ~dir:(Path.dirname adst) (fun () ->
              match delegate t (Syscall.Rename { src = asrc; dst = adst }) with
              | Ok _ -> emulate t pid (Ok Syscall.Unit)
              | Error e -> deny e))

let handle_chdir t pid vp path =
  let abs = canon t vp path in
  let enter () =
    vp.vcwd <- Path.normalize abs;
    emulate t pid (Ok Syscall.Unit)
  in
  match mount_of t abs with
  | Some (driver, rpath) ->
    (match driver.Remote.r_stat rpath with
     | Ok st when st.Fs.st_kind = Inode.Directory -> enter ()
     | Ok _ -> deny Errno.ENOTDIR
     | Error e -> deny e)
  | None ->
    check_dir t Right.List ~dir:abs (fun () ->
        match delegate t (Syscall.Stat abs) with
        | Ok (Syscall.Stat_v st) when st.Fs.st_kind = Inode.Directory -> enter ()
        | Ok (Syscall.Stat_v _) -> deny Errno.ENOTDIR
        | Ok _ -> deny Errno.EINVAL
        | Error e -> deny e)

let handle_getacl t pid vp path =
  let abs = canon t vp path in
  match mount_of t abs with
  | Some (driver, rpath) ->
    (match driver.Remote.r_getacl rpath with
     | Ok text -> emulate t pid (Ok (Syscall.Str text))
     | Error e -> deny e)
  | None ->
    let dir =
      match delegate t (Syscall.Stat abs) with
      | Ok (Syscall.Stat_v st) when st.Fs.st_kind = Inode.Directory -> abs
      | Ok _ | Error _ -> Enforce.governing_dir t.enforce abs
    in
    check_dir t Right.List ~dir (fun () ->
        let text =
          match Enforce.dir_acl t.enforce dir with
          | Some acl -> Acl.to_string acl
          | None -> ""
        in
        emulate t pid (Ok (Syscall.Str text)))

let handle_setacl t pid vp ~path ~entry =
  let abs = canon t vp path in
  match mount_of t abs with
  | Some (driver, rpath) ->
    (match driver.Remote.r_setacl rpath entry with
     | Ok () -> emulate t pid (Ok Syscall.Unit)
     | Error e -> deny e)
  | None ->
    (match Entry.of_line entry with
     | Error _ -> deny Errno.EINVAL
     | Ok parsed ->
       check_dir t Right.Admin ~dir:abs (fun () ->
           let current =
             match Enforce.dir_acl t.enforce abs with
             | Some acl -> acl
             | None -> Acl.empty
           in
           let updated = Acl.set_entry current parsed in
           match Enforce.write_acl t.enforce ~dir:abs updated with
           | Ok () -> emulate t pid (Ok Syscall.Unit)
           | Error e -> deny e))

let handle_spawn t vp ~path ~args =
  let abs = canon t vp path in
  if mount_of t abs <> None then
    (* Remote programs are staged in before execution (Fig. 3). *)
    deny Errno.EXDEV
  else
    check t Right.Execute ~object_path:abs (fun () ->
        (* The kernel spawns as the supervising account and inherits the
           tracer; the child's box-side state appears at the Spawned
           event. *)
        Trace.Rewrite (Syscall.Spawn { path = abs; args }))

let handle_kill t ~pid:_ ~target =
  (* A boxed process may signal only processes with the same identity:
     exactly the members of its own box. *)
  if member t target then Trace.Pass else deny Errno.EPERM

(* ------------------------------------------------------------------ *)
(* The dispatch.                                                       *)
(* ------------------------------------------------------------------ *)

(* The object path(s) a request names, for the audit trail. *)
let audit_paths t vp req =
  let c path = canon t vp path in
  match req with
  | Syscall.Chdir p | Syscall.Stat p | Syscall.Lstat p | Syscall.Rmdir p
  | Syscall.Unlink p | Syscall.Readlink p | Syscall.Readdir p
  | Syscall.Getacl p ->
    (c p, None)
  | Syscall.Open { path; _ } | Syscall.Mkdir { path; _ }
  | Syscall.Chmod { path; _ } | Syscall.Chown { path; _ }
  | Syscall.Truncate { path; _ } | Syscall.Setacl { path; _ }
  | Syscall.Spawn { path; _ } ->
    (c path, None)
  | Syscall.Link { target; path } -> (c path, Some (c target))
  | Syscall.Symlink { target; path } -> (c path, Some target)
  | Syscall.Rename { src; dst } -> (c src, Some (c dst))
  | Syscall.Kill { pid = target; _ } -> (Printf.sprintf "pid:%d" target, None)
  | Syscall.Getpid | Syscall.Getppid | Syscall.Getuid | Syscall.Get_user_name
  | Syscall.Getcwd | Syscall.Close _ | Syscall.Read _ | Syscall.Write _
  | Syscall.Pread _ | Syscall.Pwrite _ | Syscall.Lseek _ | Syscall.Fstat _
  | Syscall.Pipe | Syscall.Waitpid _ | Syscall.Exit _ | Syscall.Getenv _
  | Syscall.Setenv _ | Syscall.Compute _ ->
    ("", None)

let audit_record t ~pid vp req action =
  (match action with
   | Trace.Deny e ->
     Log.debug (fun m ->
         m "deny pid=%d identity=%s %s -> %s" pid (identity_string t)
           (Syscall.name req) (Errno.to_string e))
   | Trace.Pass | Trace.Rewrite _ -> ());
  match t.bx_audit with
  | None -> ()
  | Some trail ->
    let path, path2 = audit_paths t vp req in
    (* Record only object-naming operations: fd-level traffic was judged
       at open time and would drown the trail. *)
    if path <> "" then
      let verdict =
        match action with
        | Trace.Deny e -> Audit.Denied e
        | Trace.Pass | Trace.Rewrite _ -> Audit.Allowed
      in
      Audit.record trail
        ~time:(Kernel.now t.bx_kernel)
        ~pid ~identity:(identity_string t)
        ~op:(Syscall.name req) ~path ?path2 verdict

(* The decision taxonomy: every entry stop is a [box.trap]; it resolves
   to pass / deny / nullify (a rewrite-to-getpid with a pending result
   to inject — the emulation idiom) / rewrite (a genuine substitution,
   e.g. the I/O-channel coercion). *)
let metric_action t ~pid action =
  Metrics.incr t.m_trap;
  match action with
  | Trace.Pass -> Metrics.incr t.m_pass
  | Trace.Deny _ -> Metrics.incr t.m_deny
  | Trace.Rewrite Syscall.Getpid when Hashtbl.mem t.pending pid ->
    Metrics.incr t.m_nullify
  | Trace.Rewrite _ -> Metrics.incr t.m_rewrite

let rec on_entry t ~pid req =
  let vp = vproc_of t pid in
  let action = dispatch t ~pid vp req in
  metric_action t ~pid action;
  audit_record t ~pid vp req action;
  action

and dispatch t ~pid vp req =
  match req with
  | Syscall.Getpid | Syscall.Getppid | Syscall.Getuid | Syscall.Waitpid _
  | Syscall.Exit _ | Syscall.Getenv _ | Syscall.Setenv _ ->
    Trace.Pass
  | Syscall.Pipe ->
    (* The kernel creates the pipe in the tracee's own table; the box
       records the returned descriptors so later fd traffic on them is
       recognized and passed through. *)
    Hashtbl.replace t.pending pid (fun result ->
        (match result with
         | Ok (Syscall.Fd_pair { rd; wr }) ->
           Hashtbl.replace vp.passthrough rd ();
           Hashtbl.replace vp.passthrough wr ()
         | Ok _ | Error _ -> ());
        result);
    Trace.Pass
  | Syscall.Compute _ -> Trace.Pass
  | Syscall.Get_user_name -> emulate t pid (Ok (Syscall.Str (identity_string t)))
  | Syscall.Getcwd -> emulate t pid (Ok (Syscall.Str vp.vcwd))
  | Syscall.Chdir path -> handle_chdir t pid vp path
  | Syscall.Open { path; flags; mode } -> handle_open t pid vp path flags mode
  | Syscall.Close fd -> handle_close t pid vp fd
  | Syscall.Read { fd; len } -> handle_read t pid vp fd ~len ~at:None
  | Syscall.Pread { fd; off; len } -> handle_read t pid vp fd ~len ~at:(Some off)
  | Syscall.Write { fd; data } -> handle_write t pid vp fd ~data ~at:None
  | Syscall.Pwrite { fd; off; data } -> handle_write t pid vp fd ~data ~at:(Some off)
  | Syscall.Lseek { fd; off; whence } -> handle_lseek t pid vp fd ~off ~whence
  | Syscall.Stat path -> handle_stat t pid vp path ~follow:true
  | Syscall.Lstat path -> handle_stat t pid vp path ~follow:false
  | Syscall.Fstat fd -> handle_fstat t pid vp fd
  | Syscall.Mkdir { path; mode } -> handle_mkdir t pid vp path mode
  | Syscall.Rmdir path -> handle_rmdir t pid vp path
  | Syscall.Unlink path -> handle_unlink t pid vp path
  | Syscall.Link { target; path } -> handle_link t pid vp ~target ~path
  | Syscall.Symlink { target; path } -> handle_symlink t pid vp ~target ~path
  | Syscall.Readlink path -> handle_readlink t pid vp path
  | Syscall.Rename { src; dst } -> handle_rename t pid vp ~src ~dst
  | Syscall.Readdir path -> handle_readdir t pid vp path
  | Syscall.Chmod { path; _ } ->
    (* Unix mode bits are supervisor-side details; requiring write keeps
       visitors from locking the supervisor out of its own files. *)
    let abs = canon t vp path in
    check t Right.Write ~object_path:abs (fun () ->
        match delegate t req with
        | Ok _ -> emulate t pid (Ok Syscall.Unit)
        | Error e -> deny e)
  | Syscall.Chown _ -> deny Errno.EPERM
  | Syscall.Truncate { path; len } ->
    let abs = canon t vp path in
    check t Right.Write ~object_path:abs (fun () ->
        match delegate t (Syscall.Truncate { path = abs; len }) with
        | Ok _ -> emulate t pid (Ok Syscall.Unit)
        | Error e -> deny e)
  | Syscall.Spawn { path; args } -> handle_spawn t vp ~path ~args
  | Syscall.Kill { pid = target; _ } -> handle_kill t ~pid ~target
  | Syscall.Getacl path -> handle_getacl t pid vp path
  | Syscall.Setacl { path; entry } -> handle_setacl t pid vp ~path ~entry

let on_exit t ~pid _req result =
  match Hashtbl.find_opt t.pending pid with
  | Some f ->
    Hashtbl.remove t.pending pid;
    Trace.Replace (f result)
  | None -> Trace.Keep

let flush_vproc t vp =
  Hashtbl.iter
    (fun _ vfile ->
      match vfile.backing with
      | Local sfd -> ignore (delegate t (Syscall.Close sfd))
      | Remote_write { rpath; driver; buf } ->
        ignore (driver.Remote.r_write rpath (Buffer.contents buf))
      | Remote_read _ -> ())
    vp.vfds;
  Hashtbl.reset vp.vfds

let on_event t event =
  match event with
  | Trace.Spawned { pid; parent } ->
    let vcwd, inherited =
      match Hashtbl.find_opt t.vprocs parent with
      | Some pvp -> (pvp.vcwd, Hashtbl.copy pvp.passthrough)
      | None -> (t.bx_home, Hashtbl.create 4)
    in
    let vp =
      { vpid = pid; vcwd; vfds = Hashtbl.create 8; next_vfd = 1000;
        passthrough = inherited }
    in
    Hashtbl.replace t.vprocs pid vp;
    (match Kernel.process_view t.bx_kernel pid with
     | Some view -> Iochannel.attach t.channel view
     | None -> ())
  | Trace.Exited { pid; _ } ->
    (match Hashtbl.find_opt t.vprocs pid with
     | Some vp ->
       flush_vproc t vp;
       Hashtbl.remove t.vprocs pid
     | None -> ());
    Hashtbl.remove t.pending pid

(* ------------------------------------------------------------------ *)
(* Construction.                                                       *)
(* ------------------------------------------------------------------ *)

let box_counter = ref 0

let create kernel_ ~supervisor_uid ~identity ?(mounts = []) ?(small_io_threshold = 512)
    ?(audit = false) ?(caching = true) ?bytecode () =
  incr box_counter;
  let sup = Kernel.make_view kernel_ ~uid:supervisor_uid () in
  let bx_base = Printf.sprintf "/tmp/box_%d" !box_counter in
  let bx_home = bx_base ^ "/home" in
  let bx_passwd = bx_base ^ "/passwd" in
  let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e in
  let unit_of req =
    match Kernel.delegate kernel_ sup req with
    | Ok _ -> Ok ()
    | Error e -> Error e
  in
  let* () = unit_of (Syscall.Mkdir { path = bx_base; mode = 0o700 }) in
  let* () = unit_of (Syscall.Mkdir { path = bx_home; mode = 0o700 }) in
  (* The private /etc/passwd copy: the visiting identity first, mapped
     to the supervising account's uid, then the system's entries. *)
  let system_passwd =
    match Idbox_vfs.Fs.read_file (Kernel.fs kernel_) ~uid:supervisor_uid "/etc/passwd" with
    | Ok text -> text
    | Error _ -> ""
  in
  (* The passwd format cannot carry colons in the account field, and
     qualified principals ("globus:/O=.../CN=...") contain one — so the
     entry uses the name portion (the subject DN, the user@realm, the
     hostname), which is colon-free for every standard scheme.  whoami
     then shows the visitor's global name, as in Fig. 2. *)
  let visitor_entry =
    Printf.sprintf "%s:x:%d:%d:identity box visitor:%s:/bin/sh\n"
      identity.Principal.name supervisor_uid supervisor_uid bx_home
  in
  let* () =
    match
      Idbox_vfs.Fs.write_file (Kernel.fs kernel_) ~uid:supervisor_uid ~mode:0o600
        bx_passwd (visitor_entry ^ system_passwd)
    with
    | Ok () -> Ok ()
    | Error e -> Error e
  in
  let* channel = Iochannel.create kernel_ ~supervisor:sup () in
  let enforce = Enforce.create ~caching ?bytecode kernel_ ~supervisor:sup () in
  let registry = Kernel.metrics kernel_ in
  let t =
    {
      bx_kernel = kernel_;
      sup;
      bx_identity = identity;
      enforce;
      channel;
      vprocs = Hashtbl.create 8;
      pending = Hashtbl.create 8;
      mounts;
      bx_base;
      bx_home;
      bx_passwd;
      small_io = small_io_threshold;
      bx_audit = (if audit then Some (Audit.create ()) else None);
      bx_handler = None;
      m_delegate = Metrics.counter registry "box.delegate";
      m_trap = Metrics.counter registry "box.trap";
      m_pass = Metrics.counter registry "box.pass";
      m_deny = Metrics.counter registry "box.deny";
      m_nullify = Metrics.counter registry "box.nullify";
      m_rewrite = Metrics.counter registry "box.rewrite";
    }
  in
  let* () = Enforce.write_acl enforce ~dir:bx_home (Acl.for_owner identity) in
  let handler =
    Tracer.make kernel_
      ~on_entry:(fun ~pid req -> on_entry t ~pid req)
      ~on_exit:(fun ~pid req result -> on_exit t ~pid req result)
      ~on_event:(fun ev -> on_event t ev)
      ()
  in
  t.bx_handler <- Some handler;
  Ok t

let box_env t =
  [
    ("HOME", t.bx_home);
    ("USER", identity_string t);
    ("PATH", "/bin");
  ]

let spawn t ?(check_exec = true) ~path ~args () =
  let abs = Path.normalize path in
  let proceed () =
    Kernel.spawn t.bx_kernel ~uid:t.sup.View.uid ~cwd:"/" ~env:(box_env t)
      ~tracer:(handler t) ~path:abs ~args ()
  in
  if check_exec then
    match Enforce.check_object t.enforce ~identity:t.bx_identity ~path:abs
            Right.Execute
    with
    | Ok () -> proceed ()
    | Error e -> Error e
  else proceed ()

let spawn_main t ~main ~args =
  Kernel.spawn_main t.bx_kernel ~uid:t.sup.View.uid ~cwd:"/" ~env:(box_env t)
    ~tracer:(handler t) ~main ~args ()

let audit_trail t = t.bx_audit

let set_cwd t ~pid cwd =
  match Hashtbl.find_opt t.vprocs pid with
  | Some vp -> vp.vcwd <- Path.normalize cwd
  | None -> ()

let set_acl t ~dir acl = Enforce.write_acl t.enforce ~dir acl

let grant t ~dir ~pattern rights =
  let current =
    match Enforce.dir_acl t.enforce dir with Some acl -> acl | None -> Acl.empty
  in
  set_acl t ~dir (Acl.grant current ~pattern rights)
