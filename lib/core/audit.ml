module Errno = Idbox_vfs.Errno
module Metrics = Idbox_kernel.Metrics

type verdict =
  | Allowed
  | Denied of Errno.t

type event = {
  ev_seq : int;
  ev_time : int64;
  ev_pid : int;
  ev_identity : string;
  ev_op : string;
  ev_path : string;
  ev_path2 : string option;
  ev_verdict : verdict;
}

(* A bounded ring, like [Trace.ring]: once [next_seq >= cap] the
   oldest event sits at [head] and gets overwritten next.  The default
   capacity is large enough that ordinary test/report workloads never
   drop, so [events] still returns everything they recorded. *)
type t = {
  cap : int;
  mutable ring : event array;
  mutable head : int;  (* next write slot *)
  mutable next_seq : int;  (* events ever recorded *)
}

let default_capacity = 4096

let create ?(capacity = default_capacity) () =
  let cap = if capacity < 1 then 1 else capacity in
  { cap; ring = [||]; head = 0; next_seq = 0 }

let capacity t = t.cap

let record t ~time ~pid ~identity ~op ~path ?path2 verdict =
  let ev =
    {
      ev_seq = t.next_seq;
      ev_time = time;
      ev_pid = pid;
      ev_identity = identity;
      ev_op = op;
      ev_path = path;
      ev_path2 = path2;
      ev_verdict = verdict;
    }
  in
  if Array.length t.ring = 0 then t.ring <- Array.make t.cap ev
  else t.ring.(t.head) <- ev;
  t.head <- (t.head + 1) mod t.cap;
  t.next_seq <- t.next_seq + 1

let retained t = if t.next_seq < t.cap then t.next_seq else t.cap
let dropped t = t.next_seq - retained t

let iter t f =
  let n = retained t in
  let start = if t.next_seq < t.cap then 0 else t.head in
  for i = 0 to n - 1 do
    f t.ring.((start + i) mod t.cap)
  done

let events t =
  let acc = ref [] in
  iter t (fun ev -> acc := ev :: !acc);
  List.rev !acc

let length t = t.next_seq

let clear t =
  t.ring <- [||];
  t.head <- 0;
  t.next_seq <- 0

let denied t =
  List.filter (fun ev -> match ev.ev_verdict with Denied _ -> true | Allowed -> false)
    (events t)

let touched_paths t =
  List.filter_map
    (fun ev ->
      match ev.ev_verdict with
      | Allowed when ev.ev_path <> "" -> Some ev.ev_path
      | Allowed | Denied _ -> None)
    (events t)
  |> List.sort_uniq String.compare

let verdict_to_string = function
  | Allowed -> "allowed"
  | Denied e -> "denied " ^ Errno.to_string e

let event_json ev =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"seq\":%d,\"time_ns\":%Ld,\"pid\":%d,\"identity\":\"%s\",\"op\":\"%s\",\"path\":\"%s\""
       ev.ev_seq ev.ev_time ev.ev_pid
       (Metrics.escape_json ev.ev_identity)
       (Metrics.escape_json ev.ev_op)
       (Metrics.escape_json ev.ev_path));
  (match ev.ev_path2 with
   | Some p ->
     Buffer.add_string b
       (Printf.sprintf ",\"path2\":\"%s\"" (Metrics.escape_json p))
   | None -> ());
  Buffer.add_string b
    (Printf.sprintf ",\"verdict\":\"%s\"}"
       (Metrics.escape_json (verdict_to_string ev.ev_verdict)));
  Buffer.contents b

let to_json t =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "{\"capacity\":%d,\"total\":%d,\"dropped\":%d,\"events\":["
       t.cap t.next_seq (dropped t));
  let first = ref true in
  iter t (fun ev ->
      if !first then first := false else Buffer.add_char b ',';
      Buffer.add_string b (event_json ev));
  Buffer.add_string b "]}";
  Buffer.contents b

let pp_event ppf ev =
  Format.fprintf ppf "#%d t=%Ldns pid=%d %s %s %s%s -> %s" ev.ev_seq ev.ev_time
    ev.ev_pid ev.ev_identity ev.ev_op ev.ev_path
    (match ev.ev_path2 with Some p -> " -> " ^ p | None -> "")
    (verdict_to_string ev.ev_verdict)

let pp ppf t =
  List.iter (fun ev -> Format.fprintf ppf "%a@." pp_event ev) (events t)
