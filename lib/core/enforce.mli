(** The identity box's access-control engine.

    Every check answers one question: does {e identity} hold {e right}
    in the directory that governs {e path}?  The governing directory is
    found the way §6 of the paper demands (Garfinkel pitfall #2,
    "overlooking indirect paths"): if the object is a symbolic link, the
    link is followed and the {e target}'s directory is examined instead,
    so a link planted in a permissive directory cannot launder access to
    a protected one.

    ACLs are stored as [.__acl] files inside each directory and read
    through {e delegated} system calls (the supervisor's own I/O, charged
    to the clock); parsed ACLs are cached per directory and invalidated
    on every ACL write.  A directory with no ACL falls back to Unix
    permissions evaluated as the user [nobody] — the rule that protects
    the supervising user's pre-existing files from visitors.

    With caching on (the default), three generation-validated caches
    serve the warm path with {e zero} delegated syscalls, dcache-style:
    a name cache (canonical path of a full resolution, validated against
    the global VFS mutation generation), the per-directory ACL cache
    (validated against the governing directory's (ino, generation)
    instead of a delegated [Lstat] of the ACL file), and an ACL
    {e decision} cache keyed by (dir, principal, right).  Every warm hit
    charges one {!Idbox_kernel.Cost.t.gen_check_ns}.  Verdicts are
    byte-identical to the uncached engine: the VFS bumps a generation on
    every mutation that could change an answer, and only ACL-backed
    verdicts are decision-cached (the [nobody] fallback depends on the
    object's stat).  Hit/miss counters: [acl.cache.*], [enforce.name.*],
    [enforce.decision.*]. *)

type t

val create :
  ?in_kernel:bool ->
  ?caching:bool ->
  ?bytecode:bool ->
  Idbox_kernel.Kernel.t ->
  supervisor:Idbox_kernel.View.t ->
  unit ->
  t
(** With [~in_kernel:true] (the Fig. 6 ablation) the engine's own I/O is
    charged at direct kernel cost — no supervisor context switches.
    With [~caching:false] every check revalidates through delegated
    syscalls (the pre-cache behaviour) — the honest baseline for the
    [bench cache] ablation.  [bytecode] (default: the [caching] value)
    enables the compiled-policy fast path: checks consult the installed
    {!Idbox_kernel.Policy} program before any cache or interpreter work
    and charge only {!Idbox_kernel.Cost.t.bytecode_check_ns} when it
    answers.  Pin [~bytecode:false] to measure the decision-cache tier
    in isolation. *)

(** {1 Compiled-policy bytecode}

    The box's reachable ACL set, compiled by {!Policy_compile} into a
    verified decision program and consulted at syscall entry before the
    interpreter.  Invalidation rides the existing generation tokens: any
    namespace/ACL mutation bumps the VFS generation, the resident
    program goes stale, the next check falls back to the interpreter
    and triggers one recompile (charged
    {!Idbox_kernel.Cost.t.bytecode_compile_ns}, latched per
    generation).  A program the verifier rejects is never installed —
    the engine fails closed to the interpreter, and the rejection is
    latched until the filesystem changes again.  Counters:
    [kernel.bytecode.{hit,stale,fallback,recompile,reject}]. *)

val refresh_bytecode : t -> unit
(** Ensure the resident program matches the current generation,
    compiling if needed.  Servers call this when a session
    authenticates, so the session's first checks are already on the
    fast path.  No-op when bytecode is disabled. *)

val bytecode_program : t -> Idbox_kernel.Policy.t option
(** The resident program, if any — for stats and tests. *)

val set_bytecode_tamper :
  t -> (Idbox_kernel.Policy.t -> Idbox_kernel.Policy.t) option -> unit
(** Test hook: corrupt every freshly compiled program before
    verification (and drop the resident one), to prove the verifier
    rejects and the engine keeps answering via the interpreter. *)

val canonical_parents : t -> string -> string
(** Resolve every {e ancestor} symlink of [path] (the final component is
    left alone): the path the object's directory really is.  Without
    this, a visitor could plant [~/sub -> /home/victim] and smuggle
    operations through [~/sub/...] — the checker would consult the ACL
    of the lexical parent while the kernel acted on the target (the
    ancestor flavour of Garfinkel pitfall #2).  Every trapped path is
    canonicalized through here before checking {e and} acting, so both
    always name the same object.

    Cost: one name-cache component charge per step — the supervisor,
    like a kernel, keeps the directory structure of paths it has
    resolved in memory (Parrot "may be thought of as an augmented
    operating system", §3). *)

val resolve_final : t -> string -> string
(** Follow the symlink chain of [path] itself (bounded depth) to the
    path the object really lives at; identity on non-links and dangling
    tails.  Ancestors are assumed canonical (see {!canonical_parents}). *)

val governing_dir : t -> string -> string
(** The directory whose ACL governs the object at [path]:
    [dirname (resolve_final path)]. *)

val dir_acl : t -> string -> Idbox_acl.Acl.t option
(** The (cached) ACL of a directory, [None] when the directory carries
    no ACL file. *)

val check_in_dir :
  t ->
  identity:Idbox_identity.Principal.t ->
  dir:string ->
  Idbox_acl.Right.t ->
  (unit, Idbox_vfs.Errno.t) result
(** Does [identity] hold the right in [dir]?  With an ACL: ACL decides.
    Without: Unix permissions as [nobody] against [dir] itself
    (read/list → r, write/delete → w, execute → x, admin → denied). *)

val check_object :
  t ->
  identity:Idbox_identity.Principal.t ->
  path:string ->
  Idbox_acl.Right.t ->
  (unit, Idbox_vfs.Errno.t) result
(** Check against the governing directory of [path]; the [nobody]
    fallback is evaluated against the object itself when it exists
    (so an un-ACL'd but world-readable file stays readable, and the
    supervisor's 0600 [secret] stays private, exactly as in Fig. 2). *)

type mkdir_plan =
  | Fresh_acl of Idbox_acl.Acl.t
      (** Created under the reserve right: install this owner ACL. *)
  | Inherit_acl of Idbox_acl.Acl.t option
      (** Created under the write right: inherit the parent's ACL. *)

val plan_mkdir :
  t ->
  identity:Idbox_identity.Principal.t ->
  parent:string ->
  (mkdir_plan, Idbox_vfs.Errno.t) result
(** Authorize a [mkdir] in [parent] and say which ACL the new directory
    gets: the reserve right (paper §4) takes precedence and mints a
    fresh namespace owned by the caller; otherwise plain write access
    inherits the parent ACL. *)

val reserve_in_dir :
  t ->
  identity:Idbox_identity.Principal.t ->
  dir:string ->
  Idbox_acl.Rights.t option
(** The reserve grant [v(...)] available to [identity] in [dir], if any. *)

val write_acl :
  t -> dir:string -> Idbox_acl.Acl.t -> (unit, Idbox_vfs.Errno.t) result
(** Install a directory's ACL file (supervisor-side write) and refresh
    the cache. *)

val invalidate : t -> dir:string -> unit
(** Drop the cached ACL {e and} the cached decisions for one directory. *)

val acl_filename : string
(** Re-export of {!Idbox_acl.Acl.filename} for dispatch-layer filtering. *)

val admit_chain :
  t ->
  trusted:Idbox_auth.Ca.t list ->
  revocations:Idbox_auth.Delegation.Revocations.t ->
  now:int64 ->
  holder:string ->
  Idbox_auth.Delegation.chain ->
  (Idbox_auth.Delegation.summary, Idbox_auth.Delegation.failure) result
(** Validate a delegation chain presented by the authenticated [holder],
    memoized through the same generation-validated shape as the other
    caches: the key covers every stamp in the chain plus the holder, and
    a memo is valid while the {!Idbox_auth.Delegation.Revocations}
    generation is unchanged {e and} the summary is unexpired
    ({!Idbox_auth.Expiry} rule against the earliest hop expiry).  A cold
    validation charges one {!Idbox_kernel.Cost.t.chain_hop_ns} per hop;
    a warm hit charges one {!Idbox_kernel.Cost.t.gen_check_ns}.  Only
    successful verdicts are memoized — every rejection re-validates from
    scratch, fail-closed.  Counters: [enforce.chain.hit],
    [enforce.chain.miss], [auth.delegation.ok],
    [auth.delegation.reject.<reason>]. *)

val drop_chains : t -> unit
(** Drop every memoized chain verdict.  A recovering server calls this
    after rebuilding its revocation store, whose fresh generation
    counter could otherwise coincidentally validate a pre-crash memo. *)

val check_delegated :
  t ->
  identity:Idbox_identity.Principal.t ->
  grant:Idbox_acl.Rights.t ->
  prefix:string ->
  path:string ->
  Idbox_acl.Right.t ->
  (unit, Idbox_vfs.Errno.t) result
(** {!check_object} under attenuated authority: the verdict is the
    intersection of the delegated grant mask, the chain's path-prefix
    scope ([prefix] and [path] both absolute, supervisor-side), and the
    root delegator's own ACL verdict — a delegated caller can never do
    what the delegator could not. *)
