(** Per-directory access control lists.

    Inside an identity box the Unix protection scheme is abandoned in
    favour of ACLs: each directory carries a file (named {!filename})
    whose lines grant rights to principal patterns.  A principal's
    effective rights are the {e union} of the rights of every entry whose
    pattern matches — so a specific grant and an organization-wide
    wildcard compose.  Newly created directories inherit the parent ACL,
    except under the reserve right (see {!Entry.t.reserve} and
    {!reserve_for}), which mints a fresh ACL owned by the caller. *)

type t
(** An ordered list of entries.  Order is preserved for display but does
    not affect {!check}, which takes the union of matches.  Internally
    the list is compiled once, on first use, into a matcher — an exact
    hash over literal patterns plus the wild entries — with a
    per-principal memo of effective rights, so repeated checks cost one
    probe instead of a linear scan. *)

val filename : string
(** The name of the ACL file within each directory: [".__acl"]. *)

val empty : t
(** The empty ACL: nobody can do anything (visitors fall back to Unix
    permissions as [nobody]; see {!Idbox.Enforce}). *)

val of_entries : Entry.t list -> t
val entries : t -> Entry.t list

val is_empty : t -> bool

val rights_of : t -> Idbox_identity.Principal.t -> Rights.t
(** Union of the direct rights of every entry covering the principal. *)

val check : t -> Idbox_identity.Principal.t -> Right.t -> bool
(** [check t who r] — does [who] hold right [r] here? *)

val memo_capacity : int
(** The per-matcher memo bound: once a matcher has memoized this many
    distinct principals, the memo is flushed before the next insert (a
    server fielding an unbounded stream of one-shot principals must not
    grow memory without limit).  Flushed principals simply recompute on
    their next probe — verdicts never change. *)

val memo_evictions : unit -> int
(** Total memo entries discarded by capacity flushes, across all ACLs
    (process-wide, monotone) — observability for the bound above. *)

val reserve_for : t -> Idbox_identity.Principal.t -> Rights.t option
(** The union of reserve grants of all entries covering the principal,
    or [None] if no covering entry carries a reserve right. *)

val set_entry : t -> Entry.t -> t
(** Replace the entry with the same pattern text (dropping any later
    duplicates of that pattern), or append.  Appending is O(1). *)

val remove_pattern : t -> string -> t
(** Drop the entry whose pattern text equals the argument, if any. *)

val for_owner : Idbox_identity.Principal.t -> t
(** The ACL written into a fresh home or reserved directory when no
    explicit grant set applies: the owner holds every right. *)

val grant : t -> pattern:string -> Rights.t -> t
(** [grant t ~pattern rights] adds rights to the pattern's entry,
    creating the entry if needed. *)

val of_string : string -> (t, string) result
(** Parse ACL file content: one entry per line; blank lines and lines
    starting with [#] are ignored. *)

val of_string_exn : string -> t
val to_string : t -> string
(** Render as file content, one entry per line, trailing newline. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
