module Principal = Idbox_identity.Principal
module Wildcard = Idbox_identity.Wildcard

(* The compiled form of an ACL.  Literal patterns (no wildcard
   metacharacters) collapse into one hash table mapping the exact
   principal string to the union of their direct rights; genuinely wild
   entries stay as a (usually short) list scanned per principal.  A
   per-principal memo caches the final union, so a hot principal costs
   one probe.  The memo is bounded: a long-lived ACL probed by an
   unbounded stream of distinct principals (a server fielding one-shot
   sessions) must not grow without limit, so at [memo_capacity] entries
   the memo is flushed and the eviction counted — the next probe per
   principal just recomputes.  Built lazily on first [rights_of]; every
   update returns a fresh value with [matcher = None], so a compiled
   matcher can never outlive the entry list it was built from. *)
type matcher = {
  mx_exact : (string, Rights.t) Hashtbl.t;
  mx_wild : Entry.t list;
  mx_memo : (string, Rights.t) Hashtbl.t;
}

let memo_capacity = 512
let memo_evicted = ref 0
let memo_evictions () = !memo_evicted

type t = {
  rev_entries : Entry.t list;  (* reverse display order: O(1) append *)
  mutable matcher : matcher option;
}

let filename = ".__acl"

let empty = { rev_entries = []; matcher = None }

let of_entries entries = { rev_entries = List.rev entries; matcher = None }

let entries t = List.rev t.rev_entries

let is_empty t = t.rev_entries = []

let build_matcher ents =
  let mx_exact = Hashtbl.create 16 in
  let wild = ref [] in
  List.iter
    (fun (e : Entry.t) ->
      if Wildcard.is_literal e.pattern then begin
        let key = Wildcard.source e.pattern in
        let prior =
          Option.value (Hashtbl.find_opt mx_exact key) ~default:Rights.empty
        in
        Hashtbl.replace mx_exact key (Rights.union prior e.rights)
      end
      else wild := e :: !wild)
    ents;
  { mx_exact; mx_wild = List.rev !wild; mx_memo = Hashtbl.create 16 }

let matcher t =
  match t.matcher with
  | Some m -> m
  | None ->
    let m = build_matcher (entries t) in
    t.matcher <- Some m;
    m

let rights_of t who =
  let m = matcher t in
  let key = Principal.to_string who in
  match Hashtbl.find_opt m.mx_memo key with
  | Some r -> r
  | None ->
    let base =
      Option.value (Hashtbl.find_opt m.mx_exact key) ~default:Rights.empty
    in
    let r =
      List.fold_left
        (fun acc (e : Entry.t) ->
          if Entry.covers e who then Rights.union acc e.rights else acc)
        base m.mx_wild
    in
    if Hashtbl.length m.mx_memo >= memo_capacity then begin
      memo_evicted := !memo_evicted + Hashtbl.length m.mx_memo;
      Hashtbl.reset m.mx_memo
    end;
    Hashtbl.replace m.mx_memo key r;
    r

let check t who r = Rights.mem r (rights_of t who)

let reserve_for t who =
  (* Union is order-independent, so folding the reversed list is fine. *)
  List.fold_left
    (fun acc (e : Entry.t) ->
      if Entry.covers e who then
        match (e.reserve, acc) with
        | None, _ -> acc
        | Some g, None -> Some g
        | Some g, Some prior -> Some (Rights.union g prior)
      else acc)
    None t.rev_entries

let pattern_text (e : Entry.t) = Wildcard.source e.pattern

let set_entry t entry =
  let key = pattern_text entry in
  if not (List.exists (fun e -> String.equal (pattern_text e) key) t.rev_entries)
  then { rev_entries = entry :: t.rev_entries; matcher = None }
  else begin
    (* Replace the first display occurrence and drop any later duplicates
       of the same pattern, so repeated grants never grow the list. *)
    let replaced = ref false in
    let display =
      List.filter_map
        (fun e ->
          if String.equal (pattern_text e) key then
            if !replaced then None
            else begin
              replaced := true;
              Some entry
            end
          else Some e)
        (entries t)
    in
    { rev_entries = List.rev display; matcher = None }
  end

let remove_pattern t pattern =
  {
    rev_entries =
      List.filter (fun e -> not (String.equal (pattern_text e) pattern)) t.rev_entries;
    matcher = None;
  }

let for_owner who =
  of_entries [ Entry.make ~pattern:(Principal.to_string who) Rights.full ]

let grant t ~pattern rights =
  match
    List.find_opt (fun e -> String.equal (pattern_text e) pattern) t.rev_entries
  with
  | Some (e : Entry.t) ->
    set_entry t { e with rights = Rights.union e.rights rights }
  | None -> set_entry t (Entry.make ~pattern rights)

let of_string content =
  let lines = String.split_on_char '\n' content in
  let keep line =
    let trimmed = String.trim line in
    String.length trimmed > 0 && trimmed.[0] <> '#'
  in
  let rec build acc = function
    | [] -> Ok { rev_entries = acc; matcher = None }
    | line :: rest ->
      (match Entry.of_line line with
       | Ok e -> build (e :: acc) rest
       | Error msg -> Error msg)
  in
  build [] (List.filter keep lines)

let of_string_exn content =
  match of_string content with
  | Ok t -> t
  | Error msg -> invalid_arg ("Acl.of_string_exn: " ^ msg)

let to_string t =
  String.concat "" (List.map (fun e -> Entry.to_line e ^ "\n") (entries t))

let equal a b =
  List.length a.rev_entries = List.length b.rev_entries
  && List.for_all2 Entry.equal a.rev_entries b.rev_entries

let pp ppf t =
  List.iter (fun e -> Format.fprintf ppf "%a@." Entry.pp e) (entries t)
