type t =
  | EPERM
  | ENOENT
  | ESRCH
  | EINTR
  | EBADF
  | ECHILD
  | EACCES
  | EEXIST
  | EXDEV
  | ENOTDIR
  | EISDIR
  | EINVAL
  | EMFILE
  | ENOSPC
  | ESPIPE
  | ENAMETOOLONG
  | ENOTEMPTY
  | ELOOP
  | ENOSYS
  | ECONNREFUSED
  | EAGAIN
  | EPIPE
  | ETIMEDOUT
  | ECONNRESET
  | EHOSTUNREACH
  | ESTALE
  | EIO

let to_string = function
  | EPERM -> "EPERM"
  | ENOENT -> "ENOENT"
  | ESRCH -> "ESRCH"
  | EINTR -> "EINTR"
  | EBADF -> "EBADF"
  | ECHILD -> "ECHILD"
  | EACCES -> "EACCES"
  | EEXIST -> "EEXIST"
  | EXDEV -> "EXDEV"
  | ENOTDIR -> "ENOTDIR"
  | EISDIR -> "EISDIR"
  | EINVAL -> "EINVAL"
  | EMFILE -> "EMFILE"
  | ENOSPC -> "ENOSPC"
  | ESPIPE -> "ESPIPE"
  | ENAMETOOLONG -> "ENAMETOOLONG"
  | ENOTEMPTY -> "ENOTEMPTY"
  | ELOOP -> "ELOOP"
  | ENOSYS -> "ENOSYS"
  | ECONNREFUSED -> "ECONNREFUSED"
  | EAGAIN -> "EAGAIN"
  | EPIPE -> "EPIPE"
  | ETIMEDOUT -> "ETIMEDOUT"
  | ECONNRESET -> "ECONNRESET"
  | EHOSTUNREACH -> "EHOSTUNREACH"
  | ESTALE -> "ESTALE"
  | EIO -> "EIO"

let all =
  [ EPERM; ENOENT; ESRCH; EINTR; EBADF; ECHILD; EACCES; EEXIST; EXDEV; ENOTDIR;
    EISDIR; EINVAL; EMFILE; ENOSPC; ESPIPE; ENAMETOOLONG; ENOTEMPTY; ELOOP;
    ENOSYS; ECONNREFUSED; EAGAIN; EPIPE; ETIMEDOUT; ECONNRESET; EHOSTUNREACH;
    ESTALE; EIO ]

let of_string s = List.find_opt (fun e -> String.equal (to_string e) s) all

let message = function
  | EPERM -> "Operation not permitted"
  | ENOENT -> "No such file or directory"
  | ESRCH -> "No such process"
  | EINTR -> "Interrupted system call"
  | EBADF -> "Bad file descriptor"
  | ECHILD -> "No child processes"
  | EACCES -> "Permission denied"
  | EEXIST -> "File exists"
  | EXDEV -> "Invalid cross-device link"
  | ENOTDIR -> "Not a directory"
  | EISDIR -> "Is a directory"
  | EINVAL -> "Invalid argument"
  | EMFILE -> "Too many open files"
  | ENOSPC -> "No space left on device"
  | ESPIPE -> "Illegal seek"
  | ENAMETOOLONG -> "File name too long"
  | ENOTEMPTY -> "Directory not empty"
  | ELOOP -> "Too many levels of symbolic links"
  | ENOSYS -> "Function not implemented"
  | ECONNREFUSED -> "Connection refused"
  | EAGAIN -> "Resource temporarily unavailable"
  | EPIPE -> "Broken pipe"
  | ETIMEDOUT -> "Connection timed out"
  | ECONNRESET -> "Connection reset by peer"
  | EHOSTUNREACH -> "No route to host"
  | ESTALE -> "Stale file handle"
  | EIO -> "Input/output error"

let equal (a : t) b = a = b

let pp ppf t = Format.pp_print_string ppf (to_string t)
