(** Inodes: the storage objects of the simulated filesystem.

    An inode is a regular file (a growable byte store), a directory
    (a name → inode table), or a symbolic link (a target path).  Hard
    links are several directory entries sharing one inode; [nlink]
    counts them, and the file store is reclaimed by OCaml's GC when the
    last link and the last open descriptor drop it. *)

type kind =
  | Regular
  | Directory
  | Symlink
  | Fifo  (** A pipe endpoint: never appears in the directory tree. *)

type t

val ino : t -> int
(** Stable inode number, unique within one filesystem. *)

val gen : t -> int
(** Mutation generation, starting at 0.  Meaningful for directories:
    [Fs] bumps it on every namespace- or ACL-relevant change under the
    inode, so [(ino, gen)] pairs validate caches without re-reading. *)

val bump_gen : t -> unit

val kind : t -> kind

val mode : t -> int
val set_mode : t -> int -> unit

val uid : t -> int
val set_uid : t -> int -> unit

val nlink : t -> int
val incr_nlink : t -> unit
val decr_nlink : t -> unit

val mtime : t -> int64
val set_mtime : t -> int64 -> unit
val ctime : t -> int64
val set_ctime : t -> int64 -> unit

(** {1 Construction} *)

val make_file : ino:int -> uid:int -> mode:int -> now:int64 -> t
val make_dir : ino:int -> uid:int -> mode:int -> now:int64 -> t
val make_symlink : ino:int -> uid:int -> target:string -> now:int64 -> t
val make_pipe : ino:int -> now:int64 -> t
(** A fresh pipe with one reader and one writer reference. *)

(** {1 Pipes}

    A pipe is an in-kernel byte queue with reader/writer reference
    counts.  [size] of a Fifo is the number of buffered, unread bytes.
    The kernel (not this module) implements blocking: reads on an empty
    pipe with live writers suspend the calling process. *)

type pipe

val pipe_of : t -> pipe option
val pipe_available : pipe -> int
val pipe_push : pipe -> string -> unit
val pipe_pull : pipe -> int -> string
(** Consume up to N buffered bytes (possibly [""]). *)

val pipe_readers : pipe -> int
val pipe_writers : pipe -> int
val pipe_add_reader : pipe -> unit
val pipe_add_writer : pipe -> unit
val pipe_drop_reader : pipe -> unit
val pipe_drop_writer : pipe -> unit

(** {1 Regular files} *)

val size : t -> int
(** Byte length of a regular file; 0 for others. *)

val read : t -> off:int -> len:int -> bytes
(** [read t ~off ~len] returns up to [len] bytes starting at [off]; the
    result is shorter at end-of-file, and empty past it.  Raises
    [Invalid_argument] on directories. *)

val write : t -> off:int -> bytes -> int
(** [write t ~off data] writes all of [data] at [off], growing the file
    (zero-filling any gap) and returning the byte count.  Raises
    [Invalid_argument] on non-regular files. *)

val truncate : t -> len:int -> unit
(** Shrink or zero-extend a regular file to [len]. *)

val contents : t -> string
(** The whole contents of a regular file. *)

val set_contents : t -> string -> unit
(** Replace a regular file's contents. *)

(** {1 Directories} *)

val dir_find : t -> string -> t option
(** Child lookup; raises [Invalid_argument] on non-directories. *)

val dir_add : t -> string -> t -> unit
(** Add or replace an entry (callers check for collisions first). *)

val dir_remove : t -> string -> unit

val dir_entries : t -> string list
(** Entry names, sorted. *)

val dir_is_empty : t -> bool

(** {1 Symlinks} *)

val link_target : t -> string
(** Raises [Invalid_argument] on non-symlinks. *)
