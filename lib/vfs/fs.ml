type t = {
  fs_root : Inode.t;
  clock : unit -> int64;
  mutable next_ino : int;
  mutable fs_gen : int;
      (* Global mutation generation: bumped on every namespace- or
         ACL-relevant change anywhere in the tree.  Validates caches keyed
         on whole-path resolution (see [Enforce]'s name cache). *)
  mutable watched : string option;
      (* Basename whose open-for-write counts as an ACL-relevant mutation
         of the containing directory ([Enforce] registers ".__acl").
         Content writes land through file descriptors, bypassing [Fs], so
         the generation is bumped at open time instead. *)
}

type stat = {
  st_ino : int;
  st_kind : Inode.kind;
  st_mode : int;
  st_uid : int;
  st_nlink : int;
  st_size : int;
  st_mtime : int64;
  st_ctime : int64;
}

type open_flags = {
  rd : bool;
  wr : bool;
  creat : bool;
  excl : bool;
  trunc : bool;
  append : bool;
}

let rdonly =
  { rd = true; wr = false; creat = false; excl = false; trunc = false; append = false }

let wronly_create =
  { rd = false; wr = true; creat = true; excl = false; trunc = true; append = false }

(* The single symlink-expansion budget, shared by every resolver: the
   kernel-side [walk], the O_CREAT dangling-link expansion, and the
   supervisor-side canonicalisation in [Enforce].  Both sides must agree
   on when ELOOP fires, or the box's verdict diverges from the kernel's
   behaviour on deep chains. *)
let symlink_limit = 40

let create ?(clock = fun () -> 0L) () =
  let root = Inode.make_dir ~ino:1 ~uid:0 ~mode:0o755 ~now:(clock ()) in
  { fs_root = root; clock; next_ino = 2; fs_gen = 0; watched = None }

let root t = t.fs_root

let generation t = t.fs_gen

let watch_basename t name = t.watched <- Some name

(* Generation bumps are host-side bookkeeping: the mutating operation
   itself is what the kernel charges for, so bumping is free. *)
let note_global t = t.fs_gen <- t.fs_gen + 1

let note_mutation t dir =
  note_global t;
  Inode.bump_gen dir

let alloc_ino t =
  let ino = t.next_ino in
  t.next_ino <- ino + 1;
  ino

let make_pipe t = Inode.make_pipe ~ino:(alloc_ino t) ~now:(t.clock ())

let searchable ~uid dir =
  Perm.check ~uid ~owner:(Inode.uid dir) ~mode:(Inode.mode dir) Perm.X

(* The resolution engine.  [trail] is the stack of ancestor directories of
   [cur] (nearest first), used to resolve ".." correctly even through
   symlink targets.  [nexp] counts symlink expansions for ELOOP. *)
let walk t ~uid ~follow_last comps =
  let rec go trail cur comps nexp =
    match comps with
    | [] -> Ok cur
    | name :: rest ->
      if Inode.kind cur <> Inode.Directory then Error Errno.ENOTDIR
      else if not (searchable ~uid cur) then Error Errno.EACCES
      else if String.equal name ".." then
        (match trail with
         | [] -> go [] cur rest nexp
         | parent :: trail' -> go trail' parent rest nexp)
      else
        (match Inode.dir_find cur name with
         | None -> Error Errno.ENOENT
         | Some child ->
           (match Inode.kind child with
            | Inode.Symlink when rest <> [] || follow_last ->
              if nexp >= symlink_limit then Error Errno.ELOOP
              else
                let target = Inode.link_target child in
                let tcomps = Path.components target in
                if Path.is_absolute target then
                  go [] t.fs_root (tcomps @ rest) (nexp + 1)
                else go trail cur (tcomps @ rest) (nexp + 1)
            | Inode.Symlink | Inode.Regular | Inode.Directory | Inode.Fifo ->
              go (cur :: trail) child rest nexp))
  in
  go [] t.fs_root comps 0

let resolve t ~uid path = walk t ~uid ~follow_last:true (Path.components path)

let resolve_no_follow t ~uid path =
  walk t ~uid ~follow_last:false (Path.components path)

let resolve_parent t ~uid path =
  match List.rev (Path.components path) with
  | [] -> Error Errno.EINVAL
  | final :: rev_parents ->
    if String.equal final ".." then Error Errno.EINVAL
    else
      (match walk t ~uid ~follow_last:true (List.rev rev_parents) with
       | Error e -> Error e
       | Ok dir ->
         if Inode.kind dir <> Inode.Directory then Error Errno.ENOTDIR
         else Ok (dir, final))

let writable_dir ~uid dir =
  Perm.check ~uid ~owner:(Inode.uid dir) ~mode:(Inode.mode dir) Perm.W
  && searchable ~uid dir

let dir_token t path =
  match resolve t ~uid:0 path with
  | Ok inode when Inode.kind inode = Inode.Directory ->
    Some (Inode.ino inode, Inode.gen inode)
  | Ok _ | Error _ -> None

let watched_name t path =
  match t.watched with
  | Some w -> String.equal (Path.basename path) w
  | None -> false

(* A successful open-for-write of the watched basename: bump the
   containing directory (resolved as root: this is bookkeeping, not an
   access check), or at least the global generation. *)
let note_watched_write t path =
  match resolve_parent t ~uid:0 path with
  | Ok (dir, _) -> note_mutation t dir
  | Error _ -> note_global t

(* Any other open-for-write of an existing file: the directory's
   *content* is about to change even though its namespace is not.  Bump
   only the containing directory's generation (not the global one):
   per-directory digests over file contents must revalidate, but
   whole-path name caches — which content cannot affect — keep their
   hits.  Writes land through descriptors after the open, so open time
   is the one choke point (opens and writes never interleave with
   digest reads in the single-threaded simulation). *)
let note_content_write t path =
  match resolve_parent t ~uid:0 path with
  | Ok (dir, _) -> Inode.bump_gen dir
  | Error _ -> ()

(* chmod/chown change who the Unix-permission fallback grants to; bump
   the containing directory so attribute-sensitive caches revalidate. *)
let note_attr_change t path =
  match resolve_parent t ~uid:0 path with
  | Ok (dir, _) -> note_mutation t dir
  | Error _ -> note_global t

let rec open_file_depth t ~uid ~flags ~mode ~depth path =
  if depth >= symlink_limit then Error Errno.ELOOP
  else
    match resolve t ~uid path with
    | Ok inode ->
      if flags.creat && flags.excl then Error Errno.EEXIST
      else if Inode.kind inode = Inode.Directory then Error Errno.EISDIR
      else if Inode.kind inode = Inode.Symlink then
        (* Unreachable after a following resolve, but keep total. *)
        Error Errno.ELOOP
      else
        let owner = Inode.uid inode and m = Inode.mode inode in
        if flags.rd && not (Perm.check ~uid ~owner ~mode:m Perm.R) then
          Error Errno.EACCES
        else if flags.wr && not (Perm.check ~uid ~owner ~mode:m Perm.W) then
          Error Errno.EACCES
        else begin
          if flags.wr && flags.trunc then begin
            Inode.truncate inode ~len:0;
            Inode.set_mtime inode (t.clock ())
          end;
          if flags.wr then
            if watched_name t path then note_watched_write t path
            else note_content_write t path;
          Ok inode
        end
    | Error Errno.ENOENT when flags.creat ->
      (match resolve_parent t ~uid path with
       | Error e -> Error e
       | Ok (dir, name) ->
         (match Inode.dir_find dir name with
          | Some entry when Inode.kind entry = Inode.Symlink ->
            (* O_CREAT|O_EXCL: POSIX requires EEXIST when the final
               component is a symlink, dangling or not — otherwise a
               visitor-planted link redirects the "fresh" file to a
               target of the attacker's choosing. *)
            if flags.excl then Error Errno.EEXIST
            else
              (* Dangling symlink: creation happens at the link target. *)
              let target = Inode.link_target entry in
              let expanded = Path.join (Path.dirname path) target in
              open_file_depth t ~uid ~flags ~mode ~depth:(depth + 1) expanded
          | Some _ ->
            (* The entry exists but resolve said ENOENT: traversal race is
               impossible here, so treat as plain lookup success path. *)
            Error Errno.ENOENT
          | None ->
            if not (writable_dir ~uid dir) then Error Errno.EACCES
            else begin
              let inode =
                Inode.make_file ~ino:(alloc_ino t) ~uid ~mode ~now:(t.clock ())
              in
              Inode.dir_add dir name inode;
              Inode.set_mtime dir (t.clock ());
              note_mutation t dir;
              Ok inode
            end))
    | Error _ as e -> e

let open_file t ~uid ~flags ~mode path =
  if (not flags.rd) && not flags.wr then Error Errno.EINVAL
  else open_file_depth t ~uid ~flags ~mode ~depth:0 path

let mkdir t ~uid ~mode path =
  match resolve_parent t ~uid path with
  | Error e -> Error e
  | Ok (dir, name) ->
    (match Inode.dir_find dir name with
     | Some _ -> Error Errno.EEXIST
     | None ->
       if not (writable_dir ~uid dir) then Error Errno.EACCES
       else begin
         let child = Inode.make_dir ~ino:(alloc_ino t) ~uid ~mode ~now:(t.clock ()) in
         Inode.dir_add dir name child;
         Inode.set_mtime dir (t.clock ());
         note_mutation t dir;
         Ok child
       end)

let rmdir t ~uid path =
  match resolve_parent t ~uid path with
  | Error e -> Error e
  | Ok (dir, name) ->
    (* Parent write permission is judged before the name is looked up:
       a caller without it learns nothing about whether the name exists
       or the directory is empty (the existence-probe channel). *)
    if not (writable_dir ~uid dir) then Error Errno.EACCES
    else
    (match Inode.dir_find dir name with
     | None -> Error Errno.ENOENT
     | Some child ->
       if Inode.kind child <> Inode.Directory then Error Errno.ENOTDIR
       else if not (Inode.dir_is_empty child) then Error Errno.ENOTEMPTY
       else begin
         Inode.dir_remove dir name;
         Inode.decr_nlink child;
         Inode.set_mtime dir (t.clock ());
         note_mutation t dir;
         Ok ()
       end)

let unlink t ~uid path =
  match resolve_parent t ~uid path with
  | Error e -> Error e
  | Ok (dir, name) ->
    (* EACCES before ENOENT, as on Linux: see [rmdir]. *)
    if not (writable_dir ~uid dir) then Error Errno.EACCES
    else
    (match Inode.dir_find dir name with
     | None -> Error Errno.ENOENT
     | Some child ->
       if Inode.kind child = Inode.Directory then Error Errno.EISDIR
       else begin
         Inode.dir_remove dir name;
         Inode.decr_nlink child;
         Inode.set_mtime dir (t.clock ());
         note_mutation t dir;
         Ok ()
       end)

let link t ~uid ~target path =
  match resolve_no_follow t ~uid target with
  | Error e -> Error e
  | Ok src ->
    if Inode.kind src = Inode.Directory then Error Errno.EPERM
    else
      (match resolve_parent t ~uid path with
       | Error e -> Error e
       | Ok (dir, name) ->
         (match Inode.dir_find dir name with
          | Some _ -> Error Errno.EEXIST
          | None ->
            if not (writable_dir ~uid dir) then Error Errno.EACCES
            else begin
              Inode.dir_add dir name src;
              Inode.incr_nlink src;
              Inode.set_mtime dir (t.clock ());
              note_mutation t dir;
              Ok ()
            end))

let symlink t ~uid ~target path =
  match resolve_parent t ~uid path with
  | Error e -> Error e
  | Ok (dir, name) ->
    (match Inode.dir_find dir name with
     | Some _ -> Error Errno.EEXIST
     | None ->
       if not (writable_dir ~uid dir) then Error Errno.EACCES
       else begin
         let l = Inode.make_symlink ~ino:(alloc_ino t) ~uid ~target ~now:(t.clock ()) in
         Inode.dir_add dir name l;
         Inode.set_mtime dir (t.clock ());
         note_mutation t dir;
         Ok ()
       end)

let readlink t ~uid path =
  match resolve_no_follow t ~uid path with
  | Error e -> Error e
  | Ok inode ->
    if Inode.kind inode = Inode.Symlink then Ok (Inode.link_target inode)
    else Error Errno.EINVAL

(* Does directory [root] contain [needle] anywhere in its subtree
   (itself included)?  Guards rename against moving a directory into
   itself, which would detach an unreachable cycle. *)
let rec subtree_contains root needle =
  root == needle
  || Inode.kind root = Inode.Directory
     && List.exists
          (fun name ->
            match Inode.dir_find root name with
            | Some child -> subtree_contains child needle
            | None -> false)
          (Inode.dir_entries root)

let rename t ~uid ~src ~dst =
  match resolve_parent t ~uid src with
  | Error e -> Error e
  | Ok (sdir, sname) ->
    (match Inode.dir_find sdir sname with
     | None -> Error Errno.ENOENT
     | Some moving ->
       (match resolve_parent t ~uid dst with
        | Error e -> Error e
        | Ok (ddir, dname) ->
          if not (writable_dir ~uid sdir && writable_dir ~uid ddir) then
            Error Errno.EACCES
          else if
            Inode.kind moving = Inode.Directory && subtree_contains moving ddir
          then Error Errno.EINVAL
          else
            let replace () =
              Inode.dir_remove sdir sname;
              Inode.dir_add ddir dname moving;
              Inode.set_mtime sdir (t.clock ());
              Inode.set_mtime ddir (t.clock ());
              note_mutation t sdir;
              note_mutation t ddir;
              Ok ()
            in
            (match Inode.dir_find ddir dname with
             | None -> replace ()
             | Some existing when existing == moving -> Ok ()
             | Some existing ->
               (match (Inode.kind moving, Inode.kind existing) with
                | Inode.Directory, Inode.Directory ->
                  if Inode.dir_is_empty existing then begin
                    Inode.decr_nlink existing;
                    replace ()
                  end
                  else Error Errno.ENOTEMPTY
                | Inode.Directory, (Inode.Regular | Inode.Symlink | Inode.Fifo) ->
                  Error Errno.ENOTDIR
                | (Inode.Regular | Inode.Symlink | Inode.Fifo), Inode.Directory ->
                  Error Errno.EISDIR
                | (Inode.Regular | Inode.Symlink | Inode.Fifo),
                  (Inode.Regular | Inode.Symlink | Inode.Fifo) ->
                  Inode.decr_nlink existing;
                  replace ()))))

let readdir t ~uid path =
  match resolve t ~uid path with
  | Error e -> Error e
  | Ok dir ->
    if Inode.kind dir <> Inode.Directory then Error Errno.ENOTDIR
    else if not (Perm.check ~uid ~owner:(Inode.uid dir) ~mode:(Inode.mode dir) Perm.R)
    then Error Errno.EACCES
    else Ok (Inode.dir_entries dir)

let fstat inode =
  {
    st_ino = Inode.ino inode;
    st_kind = Inode.kind inode;
    st_mode = Inode.mode inode;
    st_uid = Inode.uid inode;
    st_nlink = Inode.nlink inode;
    st_size = Inode.size inode;
    st_mtime = Inode.mtime inode;
    st_ctime = Inode.ctime inode;
  }

let stat t ~uid path = Result.map fstat (resolve t ~uid path)

let lstat t ~uid path = Result.map fstat (resolve_no_follow t ~uid path)

let chmod t ~uid ~mode path =
  match resolve t ~uid path with
  | Error e -> Error e
  | Ok inode ->
    if uid <> 0 && uid <> Inode.uid inode then Error Errno.EPERM
    else begin
      Inode.set_mode inode mode;
      Inode.set_ctime inode (t.clock ());
      note_attr_change t path;
      Ok ()
    end

let chown t ~uid ~owner path =
  match resolve t ~uid path with
  | Error e -> Error e
  | Ok inode ->
    if uid <> 0 then Error Errno.EPERM
    else begin
      Inode.set_uid inode owner;
      Inode.set_ctime inode (t.clock ());
      note_attr_change t path;
      Ok ()
    end

let exists t ~uid path =
  match resolve t ~uid path with Ok _ -> true | Error _ -> false

let write_file t ~uid ?(mode = Perm.default_file_mode) path contents =
  match open_file t ~uid ~flags:wronly_create ~mode path with
  | Error e -> Error e
  | Ok inode ->
    Inode.set_contents inode contents;
    Inode.set_mtime inode (t.clock ());
    Ok ()

let read_file t ~uid path =
  match open_file t ~uid ~flags:rdonly ~mode:0 path with
  | Error e -> Error e
  | Ok inode -> Ok (Inode.contents inode)

let mkdir_p t ~uid ?(mode = Perm.default_dir_mode) path =
  let rec go prefix = function
    | [] -> Ok ()
    | comp :: rest ->
      let here = if String.equal prefix "/" then "/" ^ comp else prefix ^ "/" ^ comp in
      (match mkdir t ~uid ~mode here with
       | Ok _ | Error Errno.EEXIST -> go here rest
       | Error e -> Error e)
  in
  go "/" (Path.components path)
