(** Unix-style error numbers, returned across the simulated syscall
    boundary.  The simulated kernel never raises across that boundary;
    every failure is an [errno]. *)

type t =
  | EPERM  (** Operation not permitted. *)
  | ENOENT  (** No such file or directory. *)
  | ESRCH  (** No such process. *)
  | EINTR  (** Interrupted system call. *)
  | EBADF  (** Bad file descriptor. *)
  | ECHILD  (** No child processes. *)
  | EACCES  (** Permission denied. *)
  | EEXIST  (** File exists. *)
  | EXDEV  (** Cross-device link. *)
  | ENOTDIR  (** Not a directory. *)
  | EISDIR  (** Is a directory. *)
  | EINVAL  (** Invalid argument. *)
  | EMFILE  (** Too many open files. *)
  | ENOSPC  (** No space left on device. *)
  | ESPIPE  (** Illegal seek. *)
  | ENAMETOOLONG  (** File name too long. *)
  | ENOTEMPTY  (** Directory not empty. *)
  | ELOOP  (** Too many levels of symbolic links. *)
  | ENOSYS  (** Function not implemented. *)
  | ECONNREFUSED  (** Connection refused (simulated network). *)
  | EAGAIN  (** Resource temporarily unavailable. *)
  | EPIPE  (** Broken pipe: write with no readers left. *)
  | ETIMEDOUT  (** Connection timed out (lost message or partition). *)
  | ECONNRESET  (** Connection reset by peer (mid-exchange failure). *)
  | EHOSTUNREACH  (** No route to host. *)
  | ESTALE  (** Stale handle: the session or object is gone. *)
  | EIO  (** Input/output error. *)

val to_string : t -> string
(** The conventional upper-case name, e.g. ["ENOENT"]. *)

val of_string : string -> t option
(** Inverse of {!to_string} (used by wire protocols). *)

val all : t list
(** Every errno, for exhaustive tests. *)

val message : t -> string
(** The conventional [strerror] text, e.g. ["No such file or directory"]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
