(** The simulated filesystem: permission-checked operations over a tree
    of {!Inode.t}.

    All paths given to this module are absolute; the kernel joins
    process-relative paths against the current working directory first.
    Symbolic links are resolved with a loop limit; [".."] is resolved
    against the {e real} parent encountered during the walk, including
    through symlink targets that contain [".."].

    Every operation checks classic Unix permissions for the acting [uid]
    (search on traversed directories, read/write on the object as
    appropriate).  Identity-box ACL checks are layered {e above} this
    module by the interposition agent. *)

type t

type stat = {
  st_ino : int;
  st_kind : Inode.kind;
  st_mode : int;
  st_uid : int;
  st_nlink : int;
  st_size : int;
  st_mtime : int64;
  st_ctime : int64;
}

type open_flags = {
  rd : bool;  (** Open for reading. *)
  wr : bool;  (** Open for writing. *)
  creat : bool;  (** Create if absent (needs write on the parent). *)
  excl : bool;  (** With [creat]: fail [EEXIST] if present. *)
  trunc : bool;  (** Truncate to zero on open for write. *)
  append : bool;  (** Writes go to end-of-file. *)
}

val rdonly : open_flags
val wronly_create : open_flags
(** [creat + trunc] write flags, the common "put a file" shape. *)

val symlink_limit : int
(** The symlink-expansion budget shared by {e every} resolver — the
    kernel-side walk, the [O_CREAT] dangling-link expansion, and the
    supervisor-side canonicalisation in the enforcement engine.  One
    constant, so the box's verdict and the kernel's behaviour agree on
    when [ELOOP] fires. *)

val create : ?clock:(unit -> int64) -> unit -> t
(** A fresh filesystem containing only a root directory owned by uid 0
    with mode [0o755].  [clock] supplies mtime values (defaults to a
    constant 0 clock). *)

val root : t -> Inode.t

(** {1 Mutation generations}

    Monotonic counters that let caches revalidate without re-walking or
    re-reading anything.  Every namespace- or ACL-relevant mutation —
    create, unlink, rmdir, link, symlink, rename, chmod, chown, and a
    successful open-for-write of the {!watch_basename} name — bumps the
    global generation and the containing directory's generation.

    A successful open-for-write of any {e other} existing file bumps
    only the containing directory's generation: the directory's content
    is about to change (anti-entropy digests over file contents must
    revalidate) but its namespace is not, so whole-path name caches
    keyed on the global generation keep their hits. *)

val generation : t -> int
(** The global mutation generation (starts at 0). *)

val dir_token : t -> string -> (int * int) option
(** [(ino, gen)] of the directory the path resolves to (as root,
    following symlinks), or [None] when it does not resolve to a
    directory.  Host-side: performs no simulated syscalls. *)

val watch_basename : t -> string -> unit
(** Register a basename (the ACL file name) whose open-for-write counts
    as a mutation of the containing directory.  File contents flow
    through descriptors, bypassing this module, so the bump happens at
    open time — sound here because opens and writes never interleave
    with checks in the single-threaded simulation. *)

val make_pipe : t -> Inode.t
(** A fresh pipe inode (allocated from this filesystem's inode space,
    never linked into the tree). *)

type 'a r := ('a, Errno.t) result

val resolve : t -> uid:int -> string -> Inode.t r
(** Full resolution, following every symlink. *)

val resolve_no_follow : t -> uid:int -> string -> Inode.t r
(** Resolution that does not follow a final symlink ([lstat] flavour). *)

val resolve_parent : t -> uid:int -> string -> (Inode.t * string) r
(** [(parent directory inode, final component)] for a path that need not
    exist yet.  Fails [EINVAL] on ["/"], ["."] or [".."] finals. *)

val open_file : t -> uid:int -> flags:open_flags -> mode:int -> string -> Inode.t r
(** Open (and possibly create) a regular file, enforcing permissions. *)

val mkdir : t -> uid:int -> mode:int -> string -> Inode.t r
val rmdir : t -> uid:int -> string -> unit r
val unlink : t -> uid:int -> string -> unit r
val link : t -> uid:int -> target:string -> string -> unit r
(** Hard link: [link ~target path] makes [path] name the same inode as
    [target].  Directories cannot be hard-linked ([EPERM]). *)

val symlink : t -> uid:int -> target:string -> string -> unit r
(** [symlink ~target path]: [target] is stored verbatim. *)

val readlink : t -> uid:int -> string -> string r
val rename : t -> uid:int -> src:string -> dst:string -> unit r
val readdir : t -> uid:int -> string -> string list r
val stat : t -> uid:int -> string -> stat r
val lstat : t -> uid:int -> string -> stat r
val fstat : Inode.t -> stat
val chmod : t -> uid:int -> mode:int -> string -> unit r
val chown : t -> uid:int -> owner:int -> string -> unit r
val exists : t -> uid:int -> string -> bool
(** True when {!resolve} succeeds (follows symlinks). *)

(** {1 Convenience for tests and fixtures} *)

val write_file : t -> uid:int -> ?mode:int -> string -> string -> unit r
(** Create-or-truncate a file with the given contents. *)

val read_file : t -> uid:int -> string -> string r
(** Whole-file read. *)

val mkdir_p : t -> uid:int -> ?mode:int -> string -> unit r
(** Create every missing directory along the path. *)
