type kind =
  | Regular
  | Directory
  | Symlink
  | Fifo

type file_store = {
  mutable data : Bytes.t;
  mutable len : int;
}

type pipe = {
  pbuf : Buffer.t;
  mutable p_read_pos : int;
  mutable p_readers : int;
  mutable p_writers : int;
}

type payload =
  | File of file_store
  | Dir of (string, t) Hashtbl.t
  | Link of string
  | Pipe_end of pipe

and t = {
  i_ino : int;
  payload : payload;
  mutable i_mode : int;
  mutable i_uid : int;
  mutable i_nlink : int;
  mutable i_mtime : int64;
  mutable i_ctime : int64;
  mutable i_gen : int;
}

let ino t = t.i_ino
let gen t = t.i_gen
let bump_gen t = t.i_gen <- t.i_gen + 1

let kind t =
  match t.payload with
  | File _ -> Regular
  | Dir _ -> Directory
  | Link _ -> Symlink
  | Pipe_end _ -> Fifo

let mode t = t.i_mode
let set_mode t m = t.i_mode <- m

let uid t = t.i_uid
let set_uid t u = t.i_uid <- u

let nlink t = t.i_nlink
let incr_nlink t = t.i_nlink <- t.i_nlink + 1
let decr_nlink t = t.i_nlink <- t.i_nlink - 1

let mtime t = t.i_mtime
let set_mtime t v = t.i_mtime <- v
let ctime t = t.i_ctime
let set_ctime t v = t.i_ctime <- v

let make ~ino ~uid ~mode ~now payload =
  { i_ino = ino; payload; i_mode = mode; i_uid = uid; i_nlink = 1;
    i_mtime = now; i_ctime = now; i_gen = 0 }

let make_file ~ino ~uid ~mode ~now =
  make ~ino ~uid ~mode ~now (File { data = Bytes.create 0; len = 0 })

let make_dir ~ino ~uid ~mode ~now =
  (* nlink for directories is left at 1: the simulation does not count
     the "." and ".." pseudo-entries. *)
  make ~ino ~uid ~mode ~now (Dir (Hashtbl.create 8))

let make_symlink ~ino ~uid ~target ~now =
  make ~ino ~uid ~mode:0o777 ~now (Link target)

let make_pipe ~ino ~now =
  make ~ino ~uid:0 ~mode:0o600 ~now
    (Pipe_end { pbuf = Buffer.create 64; p_read_pos = 0; p_readers = 1; p_writers = 1 })

let store t op =
  match t.payload with
  | File s -> s
  | Dir _ | Link _ | Pipe_end _ -> invalid_arg (op ^ ": not a regular file")

let pipe_of t =
  match t.payload with
  | Pipe_end p -> Some p
  | File _ | Dir _ | Link _ -> None

let pipe_available p = Buffer.length p.pbuf - p.p_read_pos

let pipe_push p data = Buffer.add_string p.pbuf data

let pipe_pull p len =
  let n = min len (pipe_available p) in
  if n <= 0 then ""
  else begin
    let chunk = Buffer.sub p.pbuf p.p_read_pos n in
    p.p_read_pos <- p.p_read_pos + n;
    (* Compact once everything buffered has been consumed. *)
    if p.p_read_pos >= Buffer.length p.pbuf then begin
      Buffer.clear p.pbuf;
      p.p_read_pos <- 0
    end;
    chunk
  end

let pipe_readers p = p.p_readers
let pipe_writers p = p.p_writers
let pipe_add_reader p = p.p_readers <- p.p_readers + 1
let pipe_add_writer p = p.p_writers <- p.p_writers + 1
let pipe_drop_reader p = p.p_readers <- max 0 (p.p_readers - 1)
let pipe_drop_writer p = p.p_writers <- max 0 (p.p_writers - 1)

let size t =
  match t.payload with
  | File s -> s.len
  | Pipe_end p -> pipe_available p
  | Dir _ | Link _ -> 0

let read t ~off ~len =
  let s = store t "Inode.read" in
  if off >= s.len || len <= 0 then Bytes.create 0
  else
    let n = min len (s.len - off) in
    Bytes.sub s.data off n

let ensure_capacity s wanted =
  if Bytes.length s.data < wanted then begin
    let cap = max wanted (max 64 (2 * Bytes.length s.data)) in
    let grown = Bytes.create cap in
    Bytes.blit s.data 0 grown 0 s.len;
    Bytes.fill grown s.len (cap - s.len) '\000';
    s.data <- grown
  end

let write t ~off data =
  if off < 0 then invalid_arg "Inode.write: negative offset";
  let s = store t "Inode.write" in
  let n = Bytes.length data in
  ensure_capacity s (off + n);
  if off > s.len then Bytes.fill s.data s.len (off - s.len) '\000';
  Bytes.blit data 0 s.data off n;
  s.len <- max s.len (off + n);
  n

let truncate t ~len =
  if len < 0 then invalid_arg "Inode.truncate: negative length";
  let s = store t "Inode.truncate" in
  if len <= s.len then s.len <- len
  else begin
    ensure_capacity s len;
    Bytes.fill s.data s.len (len - s.len) '\000';
    s.len <- len
  end

let contents t =
  let s = store t "Inode.contents" in
  Bytes.sub_string s.data 0 s.len

let set_contents t text =
  let s = store t "Inode.set_contents" in
  let n = String.length text in
  ensure_capacity s n;
  Bytes.blit_string text 0 s.data 0 n;
  s.len <- n

let table t op =
  match t.payload with
  | Dir tbl -> tbl
  | File _ | Link _ | Pipe_end _ -> invalid_arg (op ^ ": not a directory")

let dir_find t name = Hashtbl.find_opt (table t "Inode.dir_find") name

let dir_add t name child = Hashtbl.replace (table t "Inode.dir_add") name child

let dir_remove t name = Hashtbl.remove (table t "Inode.dir_remove") name

let dir_entries t =
  Hashtbl.fold (fun name _ acc -> name :: acc) (table t "Inode.dir_entries") []
  |> List.sort String.compare

let dir_is_empty t = Hashtbl.length (table t "Inode.dir_is_empty") = 0

let link_target t =
  match t.payload with
  | Link target -> target
  | File _ | Dir _ | Pipe_end _ -> invalid_arg "Inode.link_target: not a symlink"
