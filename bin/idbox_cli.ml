(* The idbox command-line tool.

   Subcommands:
     idbox report [ARTIFACT...] [--full]   regenerate paper tables/figures
     idbox schemes                         the Figure 1 matrix only
     idbox session NAME [--files P...] [--trace]
                                           an ad-hoc identity-box session
     idbox stats [--trace]                 metrics JSON for a canned workload
     idbox acl check ENTRY... --who P --right R
                                           evaluate an ACL from the shell
     idbox cluster [--nodes N] [--drop P] [--trace]
                                           an N-node sharded Chirp cluster demo *)

open Cmdliner

(* --- report ----------------------------------------------------------- *)

let artifacts =
  let doc =
    "Artifacts to regenerate: fig1 fig2 fig3 fig4 fig5a fig5b fig6 ablation \
     (default: all)."
  in
  Arg.(value & pos_all string [] & info [] ~docv:"ARTIFACT" ~doc)

let full =
  let doc = "Run Figure 5(b) at the paper's full workload size (slow)." in
  Arg.(value & flag & info [ "full" ] ~doc)

let report_cmd =
  let run artifacts full =
    let scale = if full then 1.0 else 0.1 in
    match artifacts with
    | [] -> `Ok (Idbox_report.Report.all ~scale ())
    | names ->
      let step name =
        match name with
        | "fig1" -> Ok (Idbox_report.Report.fig1 ())
        | "fig2" -> Ok (Idbox_report.Report.fig2 ())
        | "fig3" -> Ok (Idbox_report.Report.fig3 ())
        | "fig4" -> Ok (Idbox_report.Report.fig4 ())
        | "fig5a" -> Ok (Idbox_report.Report.fig5a ())
        | "fig5b" -> Ok (Idbox_report.Report.fig5b ~scale ())
        | "fig6" -> Ok (Idbox_report.Report.fig6 ())
        | "ablation" | "ablations" -> Ok (Idbox_report.Report.ablations ())
        | other -> Error other
      in
      let rec go = function
        | [] -> `Ok ()
        | name :: rest ->
          (match step name with
           | Ok () -> go rest
           | Error other -> `Error (false, Printf.sprintf "unknown artifact %S" other))
      in
      go names
  in
  let doc = "Regenerate the paper's tables and figures." in
  Cmd.v (Cmd.info "report" ~doc) Term.(ret (const run $ artifacts $ full))

(* --- schemes ----------------------------------------------------------- *)

let schemes_cmd =
  let run () = print_string (Idbox_accounts.Probe.render_table (Idbox_accounts.Probe.rows ())) in
  let doc = "Print the derived Figure 1 identity-mapping matrix." in
  Cmd.v (Cmd.info "schemes" ~doc) Term.(const run $ const ())

(* --- session ----------------------------------------------------------- *)

let identity_arg =
  let doc = "The visiting identity (any string, e.g. Freddy or a subject DN)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"IDENTITY" ~doc)

let files_arg =
  let doc = "Supervisor files to create before the session (PATH=CONTENTS)." in
  Arg.(value & opt_all string [] & info [ "file" ] ~docv:"PATH=TEXT" ~doc)

let trace_arg =
  let doc = "After the run, print the kernel's trace ring (one line per \
             serviced system call) and the metrics JSON block." in
  Arg.(value & flag & info [ "trace" ] ~doc)

let dump_trace kernel =
  let module Kernel = Idbox_kernel.Kernel in
  let module Trace = Idbox_kernel.Trace in
  let ring = Kernel.trace_ring kernel in
  Printf.printf "trace: %d spans retained (%d emitted, %d dropped)\n"
    (Trace.length ring) (Trace.total ring) (Trace.dropped ring);
  Trace.iter ring (fun span ->
      Format.printf "  %a@." Trace.pp_span span);
  print_endline (Idbox_report.Report.metrics_json kernel)

let session_cmd =
  let run identity files trace =
    let module Kernel = Idbox_kernel.Kernel in
    let module Libc = Idbox_kernel.Libc in
    let module Fs = Idbox_vfs.Fs in
    let kernel = Kernel.create () in
    let sup =
      match Kernel.add_user kernel "supervisor" with
      | Ok e -> e
      | Error m -> failwith m
    in
    List.iter
      (fun spec ->
        match String.index_opt spec '=' with
        | None -> failwith (Printf.sprintf "bad --file %S (want PATH=TEXT)" spec)
        | Some i ->
          let path = String.sub spec 0 i in
          let text = String.sub spec (i + 1) (String.length spec - i - 1) in
          (match
             Fs.write_file (Kernel.fs kernel) ~uid:0 ~mode:0o600 path text
           with
           | Ok () -> Printf.printf "staged %s (0600, supervisor-owned)\n" path
           | Error e -> failwith (Idbox_vfs.Errno.message e)))
      files;
    let box =
      match
        Idbox.Box.create kernel ~supervisor_uid:sup.Idbox_kernel.Account.uid
          ~identity:(Idbox_identity.Principal.of_string identity) ()
      with
      | Ok b -> b
      | Error e -> failwith (Idbox_vfs.Errno.message e)
    in
    Printf.printf "identity box for %S: home=%s\n" identity (Idbox.Box.home box);
    let pid =
      Idbox.Box.spawn_main box
        ~main:(fun _ ->
          let home = Option.get (Libc.getenv "HOME") in
          Printf.printf "[box] whoami -> %s\n" (Libc.get_user_name ());
          Printf.printf "[box] pwd    -> %s\n" (Libc.getcwd ());
          List.iter
            (fun spec ->
              match String.index_opt spec '=' with
              | None -> ()
              | Some i ->
                let path = String.sub spec 0 i in
                (match Libc.read_file path with
                 | Ok text -> Printf.printf "[box] read %s -> %S (!)\n" path text
                 | Error e ->
                   Printf.printf "[box] read %s -> %s\n" path
                     (Idbox_vfs.Errno.to_string e)))
            files;
          (match Libc.write_file (home ^ "/notes") ~contents:"visitor data" with
           | Ok () -> Printf.printf "[box] write ~/notes -> ok\n"
           | Error e ->
             Printf.printf "[box] write ~/notes -> %s\n" (Idbox_vfs.Errno.to_string e));
          (match Libc.getacl home with
           | Ok acl -> Printf.printf "[box] getacl ~ ->\n%s" acl
           | Error _ -> ());
          0)
        ~args:[ "session" ]
    in
    Kernel.run kernel;
    Printf.printf "session exited %s; %d syscalls trapped\n"
      (match Kernel.exit_code kernel pid with
       | Some c -> string_of_int c
       | None -> "?")
      (Kernel.stats kernel).Idbox_kernel.Kernel.trapped;
    if trace then dump_trace kernel
  in
  let doc = "Run a demonstration identity-box session for an arbitrary identity." in
  Cmd.v (Cmd.info "session" ~doc)
    Term.(const run $ identity_arg $ files_arg $ trace_arg)

(* --- stats -------------------------------------------------------------- *)

let stats_cmd =
  let run trace =
    let kernel = Idbox_report.Report.metrics_workload () in
    print_endline (Idbox_report.Report.metrics_json kernel);
    if trace then
      print_endline (Idbox_report.Report.trace_json kernel)
  in
  let doc =
    "Run the representative boxed workload (including a Chirp exchange over \
     a deliberately lossy network, so fault and retry counters are \
     populated) and print the kernel-wide metrics registry as JSON (schema \
     idbox-metrics/1).  With $(b,--trace), also print the trace ring as \
     JSON."
  in
  Cmd.v (Cmd.info "stats" ~doc) Term.(const run $ trace_arg)

(* --- shell -------------------------------------------------------------- *)

let shell_identity_arg =
  let doc = "The visiting identity." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"IDENTITY" ~doc)

let commands_arg =
  let doc = "Shell commands to run in sequence inside the box." in
  Arg.(value & pos_right 0 string [] & info [] ~docv:"COMMAND" ~doc)

let shell_cmd =
  let run identity commands =
    let module Kernel = Idbox_kernel.Kernel in
    let kernel = Kernel.create () in
    (match Idbox_apps.Coreutils.install kernel with
     | Ok () -> ()
     | Error e -> failwith (Idbox_vfs.Errno.message e));
    (match Idbox_apps.Shell.install kernel with
     | Ok () -> ()
     | Error e -> failwith (Idbox_vfs.Errno.message e));
    let sup =
      match Kernel.add_user kernel "supervisor" with
      | Ok e -> e
      | Error m -> failwith m
    in
    let box =
      match
        Idbox.Box.create kernel ~supervisor_uid:sup.Idbox_kernel.Account.uid
          ~identity:(Idbox_identity.Principal.of_string identity) ()
      with
      | Ok b -> b
      | Error e -> failwith (Idbox_vfs.Errno.message e)
    in
    let commands =
      if commands = [] then [ "whoami"; "pwd"; "ls"; "getacl ." ] else commands
    in
    match
      Idbox_apps.Shell.run_script kernel
        ~spawn:(fun ~main ~args -> Idbox.Box.spawn_main box ~main ~args)
        ~output:(Idbox.Box.home box ^ "/.transcript")
        commands
    with
    | Ok (code, transcript) ->
      print_string transcript;
      Printf.printf "(session exited %d; %d syscalls trapped)\n" code
        (Kernel.stats kernel).Idbox_kernel.Kernel.trapped
    | Error e -> failwith (Idbox_vfs.Errno.message e)
  in
  let doc = "Run shell commands inside an identity box (scripted session)." in
  Cmd.v (Cmd.info "shell" ~doc) Term.(const run $ shell_identity_arg $ commands_arg)

(* --- cluster ------------------------------------------------------------ *)

let cluster_nodes_arg =
  let doc = "Number of Chirp servers in the cluster (1-9)." in
  Arg.(value & opt int 3 & info [ "nodes" ] ~docv:"N" ~doc)

let cluster_drop_arg =
  let doc = "Packet drop probability on every link (e.g. 0.1)." in
  Arg.(value & opt float 0.0 & info [ "drop" ] ~docv:"P" ~doc)

let cluster_cmd =
  let run nodes drop trace =
    let module Clock = Idbox_kernel.Clock in
    let module Metrics = Idbox_kernel.Metrics in
    let module Network = Idbox_net.Network in
    let module Fault = Idbox_net.Fault in
    let module World = Idbox_cluster.World in
    let module Router = Idbox_cluster.Router in
    if nodes < 1 || nodes > 9 then failwith "--nodes must be 1..9";
    let hosts =
      [ "alpha"; "beta"; "gamma"; "delta"; "epsilon"; "zeta"; "eta"; "theta";
        "iota" ]
      |> List.filteri (fun i _ -> i < nodes)
      |> List.map (fun n -> n ^ ".grid.edu")
    in
    let tring = Idbox_kernel.Trace.ring ~capacity:4096 () in
    let w = World.create ~trace:tring () in
    List.iter
      (fun h ->
        match World.add_node w ~host:h with
        | Ok () -> ()
        | Error m -> failwith m)
      hosts;
    World.settle w;
    if drop > 0.0 then
      Network.set_fault_plan (World.net w)
        (Fault.plan ~seed:11L ~default_profile:(Fault.profile ~drop ()) ());
    Printf.printf "cluster up: %s (catalog %s, R=%d)\n"
      (String.concat ", " (World.members w))
      (World.catalog_addr w) (World.replicas w);
    let r =
      match World.connect w ~credentials:[ World.issue w "Alice" ] with
      | Ok r -> r
      | Error m -> failwith m
    in
    Printf.printf "principal %s verified identical on %d shards\n"
      (Router.principal r) (List.length (Router.nodes r));
    let okv ctx = function
      | Ok v -> v
      | Error e -> failwith (ctx ^ ": " ^ Idbox_vfs.Errno.message e)
    in
    let dirs = [ "/data"; "/work"; "/scratch"; "/homes" ] in
    List.iter
      (fun d ->
        okv "mkdir" (Router.mkdir r d);
        okv "put" (Router.put r ~path:(d ^ "/hello") ~data:("hello from " ^ d));
        Printf.printf "  %-9s -> %s\n" d
          (match Router.node_for r d with Some n -> n | None -> "?"))
      dirs;
    List.iter
      (fun d ->
        Printf.printf "  get %s/hello -> %S\n" d
          (okv "get" (Router.get r (d ^ "/hello"))))
      dirs;
    (* Crash one member: reads hedge over to the surviving replicas,
       the lease ages out, and the ring rebalances without it. *)
    (match World.members w with
     | _ :: _ :: _ ->
       (* Crash the primary of /data, so the next reads of it must
          hedge over to the surviving replica. *)
       let victim =
         match Router.node_for r "/data" with Some n -> n | None -> assert false
       in
       Printf.printf "crashing %s (primary for /data)...\n" victim;
       World.crash w victim;
       List.iter
         (fun d ->
           let v = okv "get" (Router.get r (d ^ "/hello")) in
           Printf.printf "  get %s/hello -> %S (failovers so far: %d)\n" d v
             (Router.failovers r))
         dirs;
       Clock.advance (World.clock w) 400_000_000_000L (* past the lease *);
       World.tick w;
       Router.sync r;
       Printf.printf "after lease expiry: members = %s\n"
         (String.concat ", " (Router.nodes r));
       World.restart w victim;
       World.tick w;
       Router.sync r;
       Printf.printf "after restart + heartbeat: members = %s\n"
         (String.concat ", " (Router.nodes r))
     | _ -> ());
    let metrics = Network.metrics (World.net w) in
    print_endline "cluster counters:";
    List.iter
      (fun ctr ->
        let name = Metrics.counter_name ctr in
        let v = Metrics.counter_value ctr in
        if v > 0 && String.length name >= 8 && String.sub name 0 8 = "cluster." then
          Printf.printf "  %-28s %d\n" name v)
      (Metrics.counters metrics);
    if trace then begin
      let module Trace = Idbox_kernel.Trace in
      Printf.printf "trace: %d spans retained (%d emitted, %d dropped)\n"
        (Trace.length tring) (Trace.total tring) (Trace.dropped tring);
      Trace.iter tring (fun span -> Format.printf "  %a@." Trace.pp_span span)
    end
  in
  let doc =
    "Stand up an N-node sharded, replicated Chirp cluster behind the \
     identity-aware router and walk it through routing, replication, a \
     crash with hedged failover, lease-driven ejection and re-admission."
  in
  Cmd.v (Cmd.info "cluster" ~doc)
    Term.(const run $ cluster_nodes_arg $ cluster_drop_arg $ trace_arg)

(* --- acl check --------------------------------------------------------- *)

let entries_arg =
  let doc = "ACL entries, e.g. 'globus:/O=X/* rl' (repeatable)." in
  Arg.(value & opt_all string [] & info [ "entry" ] ~docv:"ENTRY" ~doc)

let who_arg =
  let doc = "Principal to evaluate." in
  Arg.(required & opt (some string) None & info [ "who" ] ~docv:"PRINCIPAL" ~doc)

let acl_cmd =
  let run entries who =
    let acl =
      List.fold_left
        (fun acc line ->
          match Idbox_acl.Entry.of_line line with
          | Ok e -> Idbox_acl.Acl.set_entry acc e
          | Error m -> failwith m)
        Idbox_acl.Acl.empty entries
    in
    let principal = Idbox_identity.Principal.of_string who in
    let rights = Idbox_acl.Acl.rights_of acl principal in
    Printf.printf "%s holds: %s\n" who (Idbox_acl.Rights.to_string rights);
    match Idbox_acl.Acl.reserve_for acl principal with
    | Some grant ->
      Printf.printf "%s may reserve directories with: %s\n" who
        (Idbox_acl.Rights.to_string grant)
    | None -> ()
  in
  let doc = "Evaluate an ACL against a principal from the command line." in
  Cmd.v (Cmd.info "acl" ~doc) Term.(const run $ entries_arg $ who_arg)

let () =
  let doc = "identity boxing: consistent global identity without local accounts" in
  let info = Cmd.info "idbox" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ report_cmd; schemes_cmd; session_cmd; shell_cmd; stats_cmd; cluster_cmd;
            acl_cmd ]))
