(* The idbox command-line tool.

   Subcommands:
     idbox report [ARTIFACT...] [--full]   regenerate paper tables/figures
     idbox schemes                         the Figure 1 matrix only
     idbox session NAME [--files P...] [--trace]
                                           an ad-hoc identity-box session
     idbox stats [--trace]                 metrics JSON for a canned workload
     idbox acl check ENTRY... --who P --right R
                                           evaluate an ACL from the shell
     idbox cluster [--nodes N] [--drop P] [--trace]
                                           an N-node sharded Chirp cluster demo
     idbox delegate                        a 3-node A->B->C delegated-exec
                                           walkthrough with revocation *)

open Cmdliner

(* --- report ----------------------------------------------------------- *)

let artifacts =
  let doc =
    "Artifacts to regenerate: fig1 fig2 fig3 fig4 fig5a fig5b fig6 ablation \
     (default: all)."
  in
  Arg.(value & pos_all string [] & info [] ~docv:"ARTIFACT" ~doc)

let full =
  let doc = "Run Figure 5(b) at the paper's full workload size (slow)." in
  Arg.(value & flag & info [ "full" ] ~doc)

let report_cmd =
  let run artifacts full =
    let scale = if full then 1.0 else 0.1 in
    match artifacts with
    | [] -> `Ok (Idbox_report.Report.all ~scale ())
    | names ->
      let step name =
        match name with
        | "fig1" -> Ok (Idbox_report.Report.fig1 ())
        | "fig2" -> Ok (Idbox_report.Report.fig2 ())
        | "fig3" -> Ok (Idbox_report.Report.fig3 ())
        | "fig4" -> Ok (Idbox_report.Report.fig4 ())
        | "fig5a" -> Ok (Idbox_report.Report.fig5a ())
        | "fig5b" -> Ok (Idbox_report.Report.fig5b ~scale ())
        | "fig6" -> Ok (Idbox_report.Report.fig6 ())
        | "ablation" | "ablations" -> Ok (Idbox_report.Report.ablations ())
        | other -> Error other
      in
      let rec go = function
        | [] -> `Ok ()
        | name :: rest ->
          (match step name with
           | Ok () -> go rest
           | Error other -> `Error (false, Printf.sprintf "unknown artifact %S" other))
      in
      go names
  in
  let doc = "Regenerate the paper's tables and figures." in
  Cmd.v (Cmd.info "report" ~doc) Term.(ret (const run $ artifacts $ full))

(* --- schemes ----------------------------------------------------------- *)

let schemes_cmd =
  let run () = print_string (Idbox_accounts.Probe.render_table (Idbox_accounts.Probe.rows ())) in
  let doc = "Print the derived Figure 1 identity-mapping matrix." in
  Cmd.v (Cmd.info "schemes" ~doc) Term.(const run $ const ())

(* --- session ----------------------------------------------------------- *)

let identity_arg =
  let doc = "The visiting identity (any string, e.g. Freddy or a subject DN)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"IDENTITY" ~doc)

let files_arg =
  let doc = "Supervisor files to create before the session (PATH=CONTENTS)." in
  Arg.(value & opt_all string [] & info [ "file" ] ~docv:"PATH=TEXT" ~doc)

let trace_arg =
  let doc = "After the run, print the kernel's trace ring (one line per \
             serviced system call) and the metrics JSON block." in
  Arg.(value & flag & info [ "trace" ] ~doc)

let dump_trace kernel =
  let module Kernel = Idbox_kernel.Kernel in
  let module Trace = Idbox_kernel.Trace in
  let ring = Kernel.trace_ring kernel in
  Printf.printf "trace: %d spans retained (%d emitted, %d dropped)\n"
    (Trace.length ring) (Trace.total ring) (Trace.dropped ring);
  Trace.iter ring (fun span ->
      Format.printf "  %a@." Trace.pp_span span);
  print_endline (Idbox_report.Report.metrics_json kernel)

let session_cmd =
  let run identity files trace =
    let module Kernel = Idbox_kernel.Kernel in
    let module Libc = Idbox_kernel.Libc in
    let module Fs = Idbox_vfs.Fs in
    let kernel = Kernel.create () in
    let sup =
      match Kernel.add_user kernel "supervisor" with
      | Ok e -> e
      | Error m -> failwith m
    in
    List.iter
      (fun spec ->
        match String.index_opt spec '=' with
        | None -> failwith (Printf.sprintf "bad --file %S (want PATH=TEXT)" spec)
        | Some i ->
          let path = String.sub spec 0 i in
          let text = String.sub spec (i + 1) (String.length spec - i - 1) in
          (match
             Fs.write_file (Kernel.fs kernel) ~uid:0 ~mode:0o600 path text
           with
           | Ok () -> Printf.printf "staged %s (0600, supervisor-owned)\n" path
           | Error e -> failwith (Idbox_vfs.Errno.message e)))
      files;
    let box =
      match
        Idbox.Box.create kernel ~supervisor_uid:sup.Idbox_kernel.Account.uid
          ~identity:(Idbox_identity.Principal.of_string identity) ()
      with
      | Ok b -> b
      | Error e -> failwith (Idbox_vfs.Errno.message e)
    in
    Printf.printf "identity box for %S: home=%s\n" identity (Idbox.Box.home box);
    let pid =
      Idbox.Box.spawn_main box
        ~main:(fun _ ->
          let home = Option.get (Libc.getenv "HOME") in
          Printf.printf "[box] whoami -> %s\n" (Libc.get_user_name ());
          Printf.printf "[box] pwd    -> %s\n" (Libc.getcwd ());
          List.iter
            (fun spec ->
              match String.index_opt spec '=' with
              | None -> ()
              | Some i ->
                let path = String.sub spec 0 i in
                (match Libc.read_file path with
                 | Ok text -> Printf.printf "[box] read %s -> %S (!)\n" path text
                 | Error e ->
                   Printf.printf "[box] read %s -> %s\n" path
                     (Idbox_vfs.Errno.to_string e)))
            files;
          (match Libc.write_file (home ^ "/notes") ~contents:"visitor data" with
           | Ok () -> Printf.printf "[box] write ~/notes -> ok\n"
           | Error e ->
             Printf.printf "[box] write ~/notes -> %s\n" (Idbox_vfs.Errno.to_string e));
          (match Libc.getacl home with
           | Ok acl -> Printf.printf "[box] getacl ~ ->\n%s" acl
           | Error _ -> ());
          0)
        ~args:[ "session" ]
    in
    Kernel.run kernel;
    Printf.printf "session exited %s; %d syscalls trapped\n"
      (match Kernel.exit_code kernel pid with
       | Some c -> string_of_int c
       | None -> "?")
      (Kernel.stats kernel).Idbox_kernel.Kernel.trapped;
    if trace then dump_trace kernel
  in
  let doc = "Run a demonstration identity-box session for an arbitrary identity." in
  Cmd.v (Cmd.info "session" ~doc)
    Term.(const run $ identity_arg $ files_arg $ trace_arg)

(* --- stats -------------------------------------------------------------- *)

let stats_cmd =
  let run trace =
    let kernel = Idbox_report.Report.metrics_workload () in
    print_endline (Idbox_report.Report.metrics_json kernel);
    if trace then
      print_endline (Idbox_report.Report.trace_json kernel)
  in
  let doc =
    "Run the representative boxed workload (including a Chirp exchange over \
     a deliberately lossy network, so fault and retry counters are \
     populated) and print the kernel-wide metrics registry as JSON (schema \
     idbox-metrics/1).  With $(b,--trace), also print the trace ring as \
     JSON."
  in
  Cmd.v (Cmd.info "stats" ~doc) Term.(const run $ trace_arg)

(* --- shell -------------------------------------------------------------- *)

let shell_identity_arg =
  let doc = "The visiting identity." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"IDENTITY" ~doc)

let commands_arg =
  let doc = "Shell commands to run in sequence inside the box." in
  Arg.(value & pos_right 0 string [] & info [] ~docv:"COMMAND" ~doc)

let shell_cmd =
  let run identity commands =
    let module Kernel = Idbox_kernel.Kernel in
    let kernel = Kernel.create () in
    (match Idbox_apps.Coreutils.install kernel with
     | Ok () -> ()
     | Error e -> failwith (Idbox_vfs.Errno.message e));
    (match Idbox_apps.Shell.install kernel with
     | Ok () -> ()
     | Error e -> failwith (Idbox_vfs.Errno.message e));
    let sup =
      match Kernel.add_user kernel "supervisor" with
      | Ok e -> e
      | Error m -> failwith m
    in
    let box =
      match
        Idbox.Box.create kernel ~supervisor_uid:sup.Idbox_kernel.Account.uid
          ~identity:(Idbox_identity.Principal.of_string identity) ()
      with
      | Ok b -> b
      | Error e -> failwith (Idbox_vfs.Errno.message e)
    in
    let commands =
      if commands = [] then [ "whoami"; "pwd"; "ls"; "getacl ." ] else commands
    in
    match
      Idbox_apps.Shell.run_script kernel
        ~spawn:(fun ~main ~args -> Idbox.Box.spawn_main box ~main ~args)
        ~output:(Idbox.Box.home box ^ "/.transcript")
        commands
    with
    | Ok (code, transcript) ->
      print_string transcript;
      Printf.printf "(session exited %d; %d syscalls trapped)\n" code
        (Kernel.stats kernel).Idbox_kernel.Kernel.trapped
    | Error e -> failwith (Idbox_vfs.Errno.message e)
  in
  let doc = "Run shell commands inside an identity box (scripted session)." in
  Cmd.v (Cmd.info "shell" ~doc) Term.(const run $ shell_identity_arg $ commands_arg)

(* --- cluster ------------------------------------------------------------ *)

let cluster_nodes_arg =
  let doc = "Number of Chirp servers in the cluster (1-9)." in
  Arg.(value & opt int 3 & info [ "nodes" ] ~docv:"N" ~doc)

let cluster_drop_arg =
  let doc = "Packet drop probability on every link (e.g. 0.1)." in
  Arg.(value & opt float 0.0 & info [ "drop" ] ~docv:"P" ~doc)

let cluster_cmd =
  let run nodes drop trace =
    let module Clock = Idbox_kernel.Clock in
    let module Metrics = Idbox_kernel.Metrics in
    let module Network = Idbox_net.Network in
    let module Fault = Idbox_net.Fault in
    let module World = Idbox_cluster.World in
    let module Router = Idbox_cluster.Router in
    if nodes < 1 || nodes > 9 then failwith "--nodes must be 1..9";
    let hosts =
      [ "alpha"; "beta"; "gamma"; "delta"; "epsilon"; "zeta"; "eta"; "theta";
        "iota" ]
      |> List.filteri (fun i _ -> i < nodes)
      |> List.map (fun n -> n ^ ".grid.edu")
    in
    let tring = Idbox_kernel.Trace.ring ~capacity:4096 () in
    let w = World.create ~trace:tring () in
    List.iter
      (fun h ->
        match World.add_node w ~host:h with
        | Ok () -> ()
        | Error m -> failwith m)
      hosts;
    World.settle w;
    if drop > 0.0 then
      Network.set_fault_plan (World.net w)
        (Fault.plan ~seed:11L ~default_profile:(Fault.profile ~drop ()) ());
    Printf.printf "cluster up: %s (catalog %s, R=%d)\n"
      (String.concat ", " (World.members w))
      (World.catalog_addr w) (World.replicas w);
    (* An operator's membership view: per-node heartbeat age, remaining
       lease and the liveness those imply.  Liveness keeps drifting
       between refreshes — a dead node goes alive -> suspect -> dead
       without another catalog round trip. *)
    let module Mb = Idbox_cluster.Membership in
    let mb = Mb.create (World.net w) ~catalog:(World.catalog_addr w) in
    let print_health () =
      ignore (Mb.refresh mb);
      print_endline "node health:";
      List.iter
        (fun nh ->
          Printf.printf "  %-8s %-22s %-8s hb_age=%6.1fs lease_left=%6.1fs\n"
            nh.Mb.nh_name nh.Mb.nh_addr
            (Mb.liveness_name nh.Mb.nh_liveness)
            (Int64.to_float nh.Mb.nh_heartbeat_age_ns /. 1e9)
            (Int64.to_float nh.Mb.nh_lease_left_ns /. 1e9))
        (Mb.health mb)
    in
    print_health ();
    let r =
      match World.connect w ~credentials:[ World.issue w "Alice" ] with
      | Ok r -> r
      | Error m -> failwith m
    in
    Printf.printf "principal %s verified identical on %d shards\n"
      (Router.principal r) (List.length (Router.nodes r));
    let okv ctx = function
      | Ok v -> v
      | Error e -> failwith (ctx ^ ": " ^ Idbox_vfs.Errno.message e)
    in
    let dirs = [ "/data"; "/work"; "/scratch"; "/homes" ] in
    List.iter
      (fun d ->
        okv "mkdir" (Router.mkdir r d);
        okv "put" (Router.put r ~path:(d ^ "/hello") ~data:("hello from " ^ d));
        Printf.printf "  %-9s -> %s\n" d
          (match Router.node_for r d with Some n -> n | None -> "?"))
      dirs;
    List.iter
      (fun d ->
        Printf.printf "  get %s/hello -> %S\n" d
          (okv "get" (Router.get r (d ^ "/hello"))))
      dirs;
    (* Crash one member: reads hedge over to the surviving replicas,
       the lease ages out, and the ring rebalances without it. *)
    (match World.members w with
     | _ :: _ :: _ ->
       (* Crash the primary of /data, so the next reads of it must
          hedge over to the surviving replica. *)
       let victim =
         match Router.node_for r "/data" with Some n -> n | None -> assert false
       in
       Printf.printf "crashing %s (primary for /data)...\n" victim;
       World.crash w victim;
       List.iter
         (fun d ->
           let v = okv "get" (Router.get r (d ^ "/hello")) in
           Printf.printf "  get %s/hello -> %S (failovers so far: %d)\n" d v
             (Router.failovers r))
         dirs;
       Clock.advance (World.clock w) 160_000_000_000L (* past half the lease *);
       World.tick w (* survivors heartbeat; the crashed node cannot *);
       print_health ();
       Clock.advance (World.clock w) 240_000_000_000L (* past the lease *);
       World.tick w;
       Router.sync r;
       Printf.printf "after lease expiry: members = %s\n"
         (String.concat ", " (Router.nodes r));
       print_health ();
       World.restart w victim;
       World.tick w;
       Router.sync r;
       Printf.printf "after restart + heartbeat: members = %s\n"
         (String.concat ", " (Router.nodes r))
     | _ -> ());
    let metrics = Network.metrics (World.net w) in
    print_endline "cluster counters:";
    List.iter
      (fun ctr ->
        let name = Metrics.counter_name ctr in
        let v = Metrics.counter_value ctr in
        if v > 0 && String.length name >= 8 && String.sub name 0 8 = "cluster." then
          Printf.printf "  %-28s %d\n" name v)
      (Metrics.counters metrics);
    if trace then begin
      let module Trace = Idbox_kernel.Trace in
      Printf.printf "trace: %d spans retained (%d emitted, %d dropped)\n"
        (Trace.length tring) (Trace.total tring) (Trace.dropped tring);
      Trace.iter tring (fun span -> Format.printf "  %a@." Trace.pp_span span)
    end
  in
  let doc =
    "Stand up an N-node sharded, replicated Chirp cluster behind the \
     identity-aware router and walk it through routing, replication, a \
     crash with hedged failover, lease-driven ejection and re-admission."
  in
  Cmd.v (Cmd.info "cluster" ~doc)
    Term.(const run $ cluster_nodes_arg $ cluster_drop_arg $ trace_arg)

(* --- delegate demo ------------------------------------------------------ *)

let delegate_cmd =
  let run () =
    let module Kernel = Idbox_kernel.Kernel in
    let module Program = Idbox_kernel.Program in
    let module Libc = Idbox_kernel.Libc in
    let module Metrics = Idbox_kernel.Metrics in
    let module World = Idbox_cluster.World in
    let module Router = Idbox_cluster.Router in
    let module Server = Idbox_chirp.Server in
    let module Audit = Idbox.Audit in
    let okv ctx = function
      | Ok v -> v
      | Error e -> failwith (ctx ^ ": " ^ Idbox_vfs.Errno.message e)
    in
    Kernel.with_fresh_programs (fun () ->
        let w = World.create () in
        List.iter
          (fun h ->
            match World.add_node w ~host:h with
            | Ok () -> ()
            | Error m -> failwith m)
          [ "alpha.grid.edu"; "beta.grid.edu"; "gamma.grid.edu" ];
        World.settle w;
        Printf.printf "cluster up: %s\n" (String.concat ", " (World.members w));
        Program.register "sim" (fun _ ->
            match
              Libc.write_file "out.dat"
                ~contents:("run by " ^ Libc.get_user_name ())
            with
            | Ok () -> 0
            | Error _ -> 1);
        let connect cn =
          match World.connect w ~credentials:[ World.issue w cn ] with
          | Ok r -> r
          | Error m -> failwith m
        in
        let ra = connect "Alice" in
        okv "mkdir" (Router.mkdir ra "/work");
        okv "put"
          (Router.put ra ~path:"/work/sim.exe" ~data:(Program.marker "sim"));
        Printf.printf "Alice staged /work/sim.exe (primary %s)\n"
          (match Router.node_for ra "/work" with Some n -> n | None -> "?");
        let rights = Idbox_acl.Rights.of_string_exn in
        let chain =
          [
            World.delegate w ~delegator:"Alice" ~delegatee:"Bob"
              ~rights:(rights "rxl") ~prefix:"/work" ();
            World.delegate w ~delegator:"Bob" ~delegatee:"Carol"
              ~rights:(rights "rx") ~prefix:"/work" ();
          ]
        in
        Printf.printf "chain: %s -[rxl /work]-> %s -[rx /work]-> %s\n"
          (World.principal_of "Alice") (World.principal_of "Bob")
          (World.principal_of "Carol");
        let rc = connect "Carol" in
        let code =
          okv "exec_delegated"
            (Router.exec_delegated rc ~chain ~path:"/work/sim.exe"
               ~args:[ "sim.exe" ] ())
        in
        Printf.printf "Carol ran /work/sim.exe under the chain: exit %d\n" code;
        Printf.printf "/work/out.dat -> %S  (the root delegator's identity)\n"
          (okv "get" (Router.get ra "/work/out.dat"));
        (match Router.get rc "/work/out.dat" with
         | Error e ->
           Printf.printf "Carol without the chain: %s\n"
             (Idbox_vfs.Errno.message e)
         | Ok _ -> print_endline "Carol without the chain: allowed (?)");
        (match Router.node_for rc "/work" with
         | Some primary ->
           let audit = Server.audit (World.server w primary) in
           Printf.printf "audit ring on %s:\n" primary;
           List.iter
             (fun ev ->
               let is_deleg =
                 String.length ev.Audit.ev_op >= 8
                 && String.equal (String.sub ev.Audit.ev_op 0 8) "delegate"
               in
               if is_deleg then
                 Printf.printf "  %-14s %-28s %s%s\n" ev.Audit.ev_op
                   ev.Audit.ev_identity ev.Audit.ev_path
                   (match ev.Audit.ev_path2 with
                    | Some p -> " -> " ^ p
                    | None -> ""))
             (Audit.events audit)
         | None -> ());
        let epoch = okv "revoke" (Router.revoke ra (World.principal_of "Alice")) in
        Printf.printf "Alice revoked her delegations cluster-wide (epoch %d)\n"
          epoch;
        (match
           Router.exec_delegated rc ~chain ~path:"/work/sim.exe"
             ~args:[ "sim.exe" ] ()
         with
         | Error e ->
           Printf.printf "Carol's chain after revocation: %s\n"
             (Idbox_vfs.Errno.message e)
         | Ok _ -> print_endline "chain survived revocation (?)");
        let metrics = Kernel.metrics (World.kernel w) in
        print_endline "delegation counters:";
        let has_prefix p name =
          String.length name >= String.length p
          && String.equal (String.sub name 0 (String.length p)) p
        in
        List.iter
          (fun ctr ->
            let name = Metrics.counter_name ctr in
            let v = Metrics.counter_value ctr in
            if
              v > 0
              && (has_prefix "auth.delegation." name
                 || has_prefix "enforce.chain." name
                 || has_prefix "chirp.delegated" name
                 || has_prefix "chirp.revocation" name)
            then Printf.printf "  %-32s %d\n" name v)
          (Metrics.counters metrics))
  in
  let doc =
    "Walk a 3-node cluster through delegated execution: Alice delegates to \
     Bob, Bob extends the chain to Carol, Carol runs Alice's program under \
     the attenuated chain (every hop audited), then a revocation kills the \
     chain cluster-wide."
  in
  Cmd.v (Cmd.info "delegate" ~doc) Term.(const run $ const ())

(* --- recovery demo ----------------------------------------------------- *)

let recovery_ops_arg =
  let doc = "Mutations to acknowledge before the crash." in
  Arg.(value & opt int 24 & info [ "ops" ] ~docv:"N" ~doc)

let recovery_cmd =
  let run ops =
    let module Clock = Idbox_kernel.Clock in
    let module Kernel = Idbox_kernel.Kernel in
    let module Account = Idbox_kernel.Account in
    let module Metrics = Idbox_kernel.Metrics in
    let module Network = Idbox_net.Network in
    let module Fault = Idbox_net.Fault in
    let module Ca = Idbox_auth.Ca in
    let module Credential = Idbox_auth.Credential in
    let module Negotiate = Idbox_auth.Negotiate in
    let module Wal = Idbox_chirp.Wal in
    let module Server = Idbox_chirp.Server in
    let module Client = Idbox_chirp.Client in
    let module Subject = Idbox_identity.Subject in
    let module World = Idbox_cluster.World in
    let module Router = Idbox_cluster.Router in
    let okv ctx = function
      | Ok v -> v
      | Error e -> failwith (ctx ^ ": " ^ Idbox_vfs.Errno.message e)
    in
    (* Act one: a server on a hostile disk.  Every crash tears the
       in-flight write, can lose unsynced tail records and flip bytes
       in the unsynced suffix — but the WAL syncs before every ack, so
       acknowledged mutations must all survive. *)
    let clock = Clock.create () in
    let kernel = Kernel.create ~clock () in
    let net = Network.create ~clock () in
    let owner = okv "account" (Result.map_error (fun m ->
        ignore m; Idbox_vfs.Errno.EIO)
        (Account.add (Kernel.accounts kernel) "chirpuser"))
    in
    Kernel.refresh_passwd kernel;
    let ca = Ca.create ~name:"Demo CA" in
    let acceptor = Negotiate.acceptor ~trusted_cas:[ ca ] () in
    let root_acl =
      Idbox_acl.Acl.of_entries
        [
          Idbox_acl.Entry.make ~pattern:"globus:/O=Demo/*"
            (Idbox_acl.Rights.of_string_exn "rwl");
        ]
    in
    let wal =
      Wal.create ~seed:42L
        ~profile:(Fault.storage_profile ~torn_write:1.0 ~lose_tail:0.6 ~flip:0.4 ())
        ()
    in
    let server =
      okv "server"
        (Server.create ~kernel ~net ~addr:"demo.grid.edu:9094"
           ~owner_uid:owner.Account.uid ~export:"/tmp/demo" ~acceptor ~root_acl
           ~wal ~checkpoint_every:20 ())
    in
    let cert = Ca.issue ca (Subject.of_string_exn "/O=Demo/CN=Writer") in
    let c =
      match
        Client.connect net ~addr:"demo.grid.edu:9094"
          ~credentials:[ Credential.Gsi cert ]
      with
      | Ok c -> c
      | Error m -> failwith m
    in
    let path i = Printf.sprintf "/file%03d" i in
    for i = 0 to ops - 1 do
      okv "put" (Client.put c ~path:(path i) ~data:(Printf.sprintf "data-%03d" i))
    done;
    Printf.printf
      "recovery: %d mutations acknowledged; WAL holds %d records (%d bytes)\n"
      ops (Server.wal_records server) (Server.wal_bytes server);
    let m name = Metrics.counter_value_of (Kernel.metrics kernel) name in
    let replayed0 = m "chirp.recovery.replayed" in
    let torn0 = m "chirp.recovery.torn" in
    let loads0 = m "chirp.recovery.checkpoint_loads" in
    Server.crash server;
    let t0 = Clock.now clock in
    Server.restart server;
    Printf.printf
      "crash + restart: checkpoint_loads=%d replayed=%d torn=%d in %.3f ms\n"
      (m "chirp.recovery.checkpoint_loads" - loads0)
      (m "chirp.recovery.replayed" - replayed0)
      (m "chirp.recovery.torn" - torn0)
      (Int64.to_float (Int64.sub (Clock.now clock) t0) /. 1e6);
    let survived = ref 0 in
    for i = 0 to ops - 1 do
      match Client.get c (path i) with
      | Ok data when String.equal data (Printf.sprintf "data-%03d" i) ->
        incr survived
      | Ok _ | Error _ -> ()
    done;
    Printf.printf "read-back: %d/%d acknowledged files intact\n" !survived ops;
    if !survived <> ops then failwith "acknowledged mutation lost";
    (* Act two: a replica drifts behind a partition, and anti-entropy
       repairs it after the heal. *)
    print_newline ();
    let w = World.create () in
    List.iter
      (fun h ->
        match World.add_node w ~host:h with
        | Ok () -> ()
        | Error msg -> failwith msg)
      [ "alpha.grid.edu"; "beta.grid.edu"; "gamma.grid.edu" ];
    World.settle w;
    let r =
      match World.connect w ~credentials:[ World.issue w "Alice" ] with
      | Ok r -> r
      | Error msg -> failwith msg
    in
    let wclock = World.clock w in
    let dirs = [ "/d0"; "/d1"; "/d2"; "/d3" ] in
    List.iter
      (fun d ->
        okv "mkdir" (Router.mkdir r d);
        okv "put" (Router.put r ~path:(d ^ "/f") ~data:("base " ^ d)))
      dirs;
    let from_ns = Clock.now wclock in
    let until_ns = Int64.add from_ns 30_000_000_000L in
    Network.set_fault_plan (World.net w)
      (Fault.plan ~seed:11L
         ~partitions:
           [
             { Fault.from_ns; until_ns;
               between = ("gamma.grid.edu", "alpha.grid.edu") };
             { Fault.from_ns; until_ns;
               between = ("gamma.grid.edu", "beta.grid.edu") };
           ]
         ());
    Printf.printf "anti-entropy: gamma partitioned from its peers for 30 s\n";
    List.iter
      (fun d -> okv "put" (Router.put r ~path:(d ^ "/f") ~data:("new " ^ d)))
      dirs;
    let wm name =
      Metrics.counter_value_of (Network.metrics (World.net w)) name
    in
    Printf.printf
      "divergent overwrites done: repair.pending=%d (failed forwards noted)\n"
      (wm "cluster.repair.pending");
    while Int64.compare (Clock.now wclock) until_ns < 0 do
      Clock.advance wclock 1_000_000_000L;
      World.tick w
    done;
    Clock.advance wclock 1_000_000_000L;
    World.tick w;
    Printf.printf
      "healed + one tick: repair.diverged=%d repair.push=%d repair.clean=%d\n"
      (wm "cluster.repair.diverged") (wm "cluster.repair.push")
      (wm "cluster.repair.clean");
    List.iter
      (fun d ->
        let key = String.sub d 1 (String.length d - 1) in
        let digests =
          List.filter_map
            (fun name ->
              match Server.subtree_digest (World.server w name) key with
              | Ok dg -> Some (name ^ "=" ^ String.sub dg 0 8)
              | Error _ -> None)
            (World.members w)
        in
        Printf.printf "  %s holders agree: %s\n" d
          (String.concat " " digests))
      dirs
  in
  let doc =
    "Walk the durability story end to end: acknowledged mutations survive a \
     crash on a hostile disk (WAL replay from the latest checkpoint), and a \
     replica that diverged behind a partition is repaired by anti-entropy \
     after the heal."
  in
  Cmd.v (Cmd.info "recovery" ~doc) Term.(const run $ recovery_ops_arg)

(* --- acl check --------------------------------------------------------- *)

let entries_arg =
  let doc = "ACL entries, e.g. 'globus:/O=X/* rl' (repeatable)." in
  Arg.(value & opt_all string [] & info [ "entry" ] ~docv:"ENTRY" ~doc)

let who_arg =
  let doc = "Principal to evaluate." in
  Arg.(required & opt (some string) None & info [ "who" ] ~docv:"PRINCIPAL" ~doc)

let acl_cmd =
  let run entries who =
    let acl =
      List.fold_left
        (fun acc line ->
          match Idbox_acl.Entry.of_line line with
          | Ok e -> Idbox_acl.Acl.set_entry acc e
          | Error m -> failwith m)
        Idbox_acl.Acl.empty entries
    in
    let principal = Idbox_identity.Principal.of_string who in
    let rights = Idbox_acl.Acl.rights_of acl principal in
    Printf.printf "%s holds: %s\n" who (Idbox_acl.Rights.to_string rights);
    match Idbox_acl.Acl.reserve_for acl principal with
    | Some grant ->
      Printf.printf "%s may reserve directories with: %s\n" who
        (Idbox_acl.Rights.to_string grant)
    | None -> ()
  in
  let doc = "Evaluate an ACL against a principal from the command line." in
  Cmd.v (Cmd.info "acl" ~doc) Term.(const run $ entries_arg $ who_arg)

let () =
  let doc = "identity boxing: consistent global identity without local accounts" in
  let info = Cmd.info "idbox" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ report_cmd; schemes_cmd; session_cmd; shell_cmd; stats_cmd; cluster_cmd;
            delegate_cmd; recovery_cmd; acl_cmd ]))
